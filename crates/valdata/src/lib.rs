//! # valdata — validation-data compilation substrate
//!
//! Rebuilds the three validation sources of Luckie et al. 2013 (§3.2 of the
//! paper) against the simulated world:
//!
//! 1. **BGP communities** ([`compile::compile_communities`]) — the
//!    "best-effort" source every recent evaluation relies on: decode the
//!    informational communities on collector-visible routes using the
//!    *published* dictionaries only. Coverage bias emerges causally: an AS
//!    that does not document its communities (most LACNIC ASes, most stubs)
//!    contributes no labels.
//! 2. **RPSL / WHOIS** ([`rpsl`]) — `aut-num` routing-policy objects in real
//!    RPSL syntax, with configurable staleness (records lag the topology).
//! 3. **Direct reports** ([`report`]) — a small unbiased ground-truth sample
//!    (operator survey / web form).
//!
//! The §4.2 label-quality problems all arise mechanically:
//!
//! * `AS_TRANS` labels from a legacy decoding pipeline that ignores
//!   `AS4_PATH` on 16-bit collector sessions,
//! * reserved-ASN labels from private-ASN route leaks,
//! * multi-label (ambiguous) entries from per-PoP hybrid relationships,
//! * sibling-link labels (dropped later via AS2Org, not here),
//! * occasional stale/wrong dictionary interpretations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod config;
pub mod report;
pub mod rpsl;
pub mod set;

pub use compile::compile_communities;
pub use config::ValDataConfig;
pub use report::direct_reports;
pub use set::{LabelRecord, LabelSource, ValidationSet};

/// Compiles the full validation set from all three sources.
#[must_use]
pub fn compile_all(
    topology: &topogen::Topology,
    snapshot: &bgpsim::RibSnapshot,
    cfg: &ValDataConfig,
) -> ValidationSet {
    let _span = breval_obs::span!("compile_validation");
    let mut set = compile_communities(topology, snapshot, cfg);
    let rpsl_objects = rpsl::generate_autnums(topology, cfg);
    set.merge(rpsl::labels_from_autnums(&rpsl_objects, cfg));
    set.merge(direct_reports(topology, cfg));
    breval_obs::counter("validation_labels_compiled", set.len() as u64);
    set
}
