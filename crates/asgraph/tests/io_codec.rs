//! Property tests for the flat typed-array codec (`asgraph::io`): every
//! dense structure round-trips byte-identically, and corrupt streams —
//! truncations at any cut point, arbitrary byte flips, oversized length
//! prefixes — produce `Err`, never a panic or an attacker-sized allocation.

use asgraph::io::{
    read_cone_sizes, read_csr_graph, read_ppdc_cones, write_cone_sizes, write_csr_graph,
    write_ppdc_cones, ByteReader, ByteWriter, IoError,
};
use asgraph::{cone, AsGraph, AsPath, Asn, CsrGraph, Link, PathSet, Rel};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small random relationship graph: edges over a bounded ASN space with
/// random role labels; conflicting/self edges are simply skipped.
fn arb_graph() -> impl Strategy<Value = AsGraph> {
    proptest::collection::vec(((1u32..40), (1u32..40), (0u8..3)), 0..60).prop_map(|edges| {
        let mut g = AsGraph::new();
        for (a, b, kind) in edges {
            let Some(link) = Link::new(Asn(a), Asn(b)) else {
                continue;
            };
            let rel = match kind {
                0 => Rel::P2c { provider: Asn(a) },
                1 => Rel::P2p,
                _ => Rel::S2s,
            };
            let _ = g.add_rel(link, rel);
        }
        g
    })
}

/// Random observed paths over the same ASN space, long enough that some
/// PPDC rows cross the sparse/dense cutoff and both row encodings appear.
fn arb_paths() -> impl Strategy<Value = PathSet> {
    proptest::collection::vec(proptest::collection::vec(1u32..40, 2..16), 0..30).prop_map(|paths| {
        let mut ps = PathSet::new();
        for hops in paths {
            let hops: Vec<Asn> = hops.into_iter().map(Asn).collect();
            ps.push(hops[0], AsPath::new(hops));
        }
        ps
    })
}

fn encode(graph: &AsGraph, paths: &PathSet) -> (Vec<u8>, CsrGraph) {
    let csr = CsrGraph::build(graph);
    let cones = cone::customer_cone_sizes_csr(&csr);
    let rels: BTreeMap<Link, Rel> = graph.links().collect();
    let ppdc = cone::ppdc_cones(paths, &rels);
    let mut w = ByteWriter::new();
    write_csr_graph(&mut w, &csr);
    write_cone_sizes(&mut w, &cones);
    write_ppdc_cones(&mut w, &ppdc);
    (w.into_bytes(), csr)
}

fn decode_all(bytes: &[u8]) -> Result<(), IoError> {
    let mut r = ByteReader::new(bytes);
    let _ = read_csr_graph(&mut r)?;
    let _ = read_cone_sizes(&mut r)?;
    let _ = read_ppdc_cones(&mut r)?;
    r.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_byte_identical(graph in arb_graph(), paths in arb_paths()) {
        let (bytes, csr) = encode(&graph, &paths);
        let mut r = ByteReader::new(&bytes);
        let csr2 = read_csr_graph(&mut r).expect("csr decodes");
        let cones2 = read_cone_sizes(&mut r).expect("cones decode");
        let ppdc2 = read_ppdc_cones(&mut r).expect("ppdc decodes");
        r.finish().expect("stream fully consumed");

        // The decoded CSR answers neighbor queries identically.
        prop_assert_eq!(csr.node_count(), csr2.node_count());
        for id in 0..csr.node_count() as u32 {
            prop_assert_eq!(csr.customers(id), csr2.customers(id));
            prop_assert_eq!(csr.providers(id), csr2.providers(id));
            prop_assert_eq!(csr.peers(id), csr2.peers(id));
            prop_assert_eq!(csr.siblings(id), csr2.siblings(id));
        }
        // Derived analyses agree, and re-encoding is byte-identical.
        prop_assert_eq!(&cone::customer_cone_sizes_csr(&csr2), &cones2);
        let mut w = ByteWriter::new();
        write_csr_graph(&mut w, &csr2);
        write_cone_sizes(&mut w, &cones2);
        write_ppdc_cones(&mut w, &ppdc2);
        prop_assert_eq!(w.into_bytes(), bytes);
    }

    #[test]
    fn truncation_errors_never_panic(
        graph in arb_graph(),
        paths in arb_paths(),
        frac in 0.0f64..1.0,
    ) {
        let (bytes, _) = encode(&graph, &paths);
        // The stream is never empty (it always holds length prefixes), so a
        // strict prefix always exists.
        let cut = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        prop_assert!(decode_all(&bytes[..cut]).is_err());
    }

    #[test]
    fn byte_flips_never_panic(
        graph in arb_graph(),
        paths in arb_paths(),
        pos in 0usize..10_000,
        mask in 1u8..=255,
    ) {
        let (mut bytes, _) = encode(&graph, &paths);
        let pos = pos % bytes.len();
        bytes[pos] ^= mask;
        // A flipped byte may still decode (payload bits) — it just must
        // never panic or allocate from an unvalidated length.
        let _ = decode_all(&bytes);
    }
}

#[test]
fn hybrid_ppdc_round_trips_both_row_forms() {
    // A 12-AS provider chain: AS2's cone (11 members) is dense at the
    // cutoff floor of 8, the tail cones are sparse — so one stream carries
    // both encodings and must round-trip byte-identically.
    let mut g = AsGraph::new();
    let chain: Vec<Asn> = (1..=12).map(Asn).collect();
    for w in chain.windows(2) {
        g.add_rel(
            Link::new(w[0], w[1]).expect("distinct"),
            Rel::P2c { provider: w[0] },
        )
        .expect("fresh link");
    }
    let mut ps = PathSet::new();
    ps.push(chain[0], AsPath::new(chain));
    let rels: BTreeMap<Link, Rel> = g.links().collect();
    let ppdc = cone::ppdc_cones(&ps, &rels);
    // Sizes witness the split: 11 >= cutoff (dense), 2 < cutoff (sparse).
    assert_eq!(ppdc.size(Asn(2)), Some(11));
    assert_eq!(ppdc.size(Asn(11)), Some(2));

    let mut w = ByteWriter::new();
    write_ppdc_cones(&mut w, &ppdc);
    let bytes = w.into_bytes();
    let mut r = ByteReader::new(&bytes);
    let ppdc2 = read_ppdc_cones(&mut r).expect("hybrid ppdc decodes");
    r.finish().expect("stream fully consumed");
    for asn in (1..=12).map(Asn) {
        assert_eq!(ppdc2.members(asn), ppdc.members(asn));
        assert_eq!(ppdc2.size(asn), ppdc.size(asn));
    }
    let mut w = ByteWriter::new();
    write_ppdc_cones(&mut w, &ppdc2);
    assert_eq!(w.into_bytes(), bytes);
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut g = AsGraph::new();
    g.add_rel(
        Link::new(Asn(1), Asn(2)).expect("distinct"),
        Rel::P2c { provider: Asn(1) },
    )
    .expect("fresh link");
    let csr = CsrGraph::build(&g);
    let mut w = ByteWriter::new();
    write_csr_graph(&mut w, &csr);
    let mut bytes = w.into_bytes();
    // The stream starts with the indexer's u64 element count: claim 2^61
    // elements. The reader must refuse before reserving memory for them.
    bytes[..8].copy_from_slice(&(1u64 << 61).to_le_bytes());
    let mut r = ByteReader::new(&bytes);
    assert!(matches!(
        read_csr_graph(&mut r),
        Err(IoError::OversizedLength { .. })
    ));
}
