//! Property-based tests for the asgraph substrate.

use asgraph::{cone, AsGraph, AsPath, Asn, Link, PathSet, Rel};
use proptest::prelude::*;

fn arb_asn() -> impl Strategy<Value = Asn> {
    (1u32..500).prop_map(Asn)
}

fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(arb_asn(), 0..12).prop_map(AsPath::new)
}

proptest! {
    /// Link construction is symmetric and normalised.
    #[test]
    fn link_normalisation(a in arb_asn(), b in arb_asn()) {
        match (Link::new(a, b), Link::new(b, a)) {
            (Some(l1), Some(l2)) => {
                prop_assert_eq!(l1, l2);
                prop_assert!(l1.a() < l1.b());
                prop_assert!(l1.contains(a) && l1.contains(b));
                prop_assert_eq!(l1.other(a), Some(b));
            }
            (None, None) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "asymmetric link construction"),
        }
    }

    /// Path compression is idempotent and removes exactly the consecutive runs.
    #[test]
    fn compression_idempotent(path in arb_path()) {
        let c1 = path.compressed();
        let recompressed = AsPath::new(c1.clone()).compressed();
        prop_assert_eq!(&c1, &recompressed);
        // No consecutive duplicates remain.
        prop_assert!(c1.windows(2).all(|w| w[0] != w[1]));
        // Same multiset of distinct ASes.
        let mut orig: Vec<Asn> = path.hops().to_vec();
        orig.dedup();
        prop_assert_eq!(c1, orig);
    }

    /// A loop-free path never revisits an AS after compression.
    #[test]
    fn loop_free_paths_have_unique_hops(path in arb_path()) {
        if !path.has_loop() {
            let c = path.compressed();
            let mut sorted = c.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), c.len());
        }
    }

    /// Triplet count equals max(compressed_len - 2, 0); link count equals
    /// max(compressed_len - 1, 0).
    #[test]
    fn triplet_and_link_counts(path in arb_path()) {
        let n = path.compressed().len();
        prop_assert_eq!(path.triplets().len(), n.saturating_sub(2));
        prop_assert_eq!(path.links().len(), n.saturating_sub(1));
    }

    /// The customer cone always contains the AS itself and is monotone under
    /// adding customer links.
    #[test]
    fn cone_contains_self_and_grows(
        links in prop::collection::vec((arb_asn(), arb_asn()), 1..40)
    ) {
        let mut g = AsGraph::new();
        for (p, c) in &links {
            if let Some(link) = Link::new(*p, *c) {
                // Ignore conflicts: first orientation wins.
                let _ = g.add_rel(link, Rel::P2c { provider: *p });
            }
        }
        for asn in g.ases() {
            let cone = cone::customer_cone(&g, asn);
            prop_assert!(cone.contains(&asn));
            // Every direct customer is in the cone.
            for c in g.customers(asn) {
                prop_assert!(cone.contains(&c));
            }
        }
    }

    /// PathStats degrees: transit degree never exceeds node degree.
    #[test]
    fn transit_degree_bounded_by_node_degree(
        paths in prop::collection::vec(arb_path(), 0..20)
    ) {
        let mut ps = PathSet::new();
        for p in paths {
            if let Some(vp) = p.head() {
                ps.push(vp, p);
            }
        }
        let stats = ps.stats();
        for asn in stats.ases() {
            prop_assert!(stats.transit_degree(asn) <= stats.node_degree(asn));
        }
    }
}
