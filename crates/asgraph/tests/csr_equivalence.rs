//! Property-based equivalence of the dense core against the BTree substrate:
//! `CsrGraph` must mirror `AsGraph` exactly (per-role neighbors, cone sets,
//! cone sizes) and the bitset PPDC cones must match the hash-based baseline
//! on arbitrary seeded inputs.

use asgraph::{cone, AsGraph, AsPath, Asn, ConeScratch, CsrGraph, Link, PathSet, Rel};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_asn() -> impl Strategy<Value = Asn> {
    (1u32..200).prop_map(Asn)
}

/// An arbitrary relationship-labelled graph: each pair gets a role; invalid
/// or conflicting insertions are skipped (first orientation wins), exactly
/// how the inference pipelines build graphs.
fn arb_graph() -> impl Strategy<Value = AsGraph> {
    prop::collection::vec((arb_asn(), arb_asn(), 0u8..4), 0..60).prop_map(|triples| {
        let mut g = AsGraph::new();
        for (a, b, role) in triples {
            let Some(link) = Link::new(a, b) else {
                continue;
            };
            let rel = match role {
                0 => Rel::P2c { provider: a },
                1 => Rel::P2c { provider: b },
                2 => Rel::P2p,
                _ => Rel::S2s,
            };
            let _ = g.add_rel(link, rel);
        }
        g
    })
}

fn arb_pathset() -> impl Strategy<Value = PathSet> {
    // Paths long enough that some PPDC cones cross the sparse/dense cutoff
    // (8 at this scale), so both row representations are exercised.
    prop::collection::vec(prop::collection::vec(arb_asn(), 0..16), 0..25).prop_map(|paths| {
        let mut ps = PathSet::new();
        for hops in paths {
            let path = AsPath::new(hops);
            if let Some(vp) = path.head() {
                ps.push(vp, path);
            }
        }
        ps
    })
}

proptest! {
    /// Every role's CSR neighbor slice matches the BTree adjacency view,
    /// in the same (ascending ASN) order.
    #[test]
    fn csr_neighbors_match_graph(g in arb_graph()) {
        let csr = CsrGraph::build(&g);
        prop_assert_eq!(csr.node_count(), g.as_count());
        for asn in g.ases() {
            let id = csr.indexer().id(asn).expect("graph AS is interned");
            let to_asns = |ids: &[u32]| -> Vec<Asn> {
                ids.iter().map(|&i| csr.indexer().asn(i)).collect()
            };
            prop_assert_eq!(to_asns(csr.providers(id)), g.providers(asn));
            prop_assert_eq!(to_asns(csr.customers(id)), g.customers(asn));
            prop_assert_eq!(to_asns(csr.peers(id)), g.peers(asn));
            prop_assert_eq!(to_asns(csr.siblings(id)), g.siblings(asn));
        }
    }

    /// The allocation-free CSR BFS visits exactly the reference cone set,
    /// for every AS, even when one scratch is reused across all of them.
    #[test]
    fn csr_cone_sets_match_reference(g in arb_graph()) {
        let csr = CsrGraph::build(&g);
        let mut scratch = ConeScratch::new();
        for asn in g.ases() {
            let reference = cone::customer_cone(&g, asn);
            let id = csr.indexer().id(asn).expect("graph AS is interned");
            let dense: BTreeSet<Asn> = csr
                .customer_cone_ids(id, &mut scratch)
                .iter()
                .map(|&i| csr.indexer().asn(i))
                .collect();
            prop_assert_eq!(&dense, &reference);
            prop_assert_eq!(csr.customer_cone_size(id, &mut scratch), reference.len());
        }
    }

    /// The dense whole-graph cone sizes equal the BTree baseline's, with the
    /// same key set.
    #[test]
    fn dense_cone_sizes_match_baseline(g in arb_graph()) {
        let dense = cone::customer_cone_sizes(&g);
        let reference = cone::baseline::customer_cone_sizes_btree(&g);
        prop_assert_eq!(dense.len(), reference.len());
        for (asn, size) in dense.iter() {
            prop_assert_eq!(reference.get(&asn).copied(), Some(size));
        }
    }

    /// Hybrid PPDC cones (sparse id lists below the density cutoff, bitset
    /// rows above it) equal the hash-based baseline: same key set, same
    /// members, same sizes, same membership answers, and ASN-ascending
    /// iteration — whichever representation each row landed on.
    #[test]
    fn ppdc_bitsets_match_baseline(ps in arb_pathset(), g in arb_graph()) {
        let rels: std::collections::BTreeMap<Link, Rel> = g.links().collect();
        let dense = cone::ppdc_cones(&ps, &rels);
        let reference = cone::baseline::ppdc_cones_hash(&ps, &rels);
        prop_assert_eq!(dense.indexer().len(), reference.len());
        let sizes = dense.sizes();
        let all: Vec<Asn> = dense.indexer().iter().collect();
        for (asn, members) in &reference {
            let expect: BTreeSet<Asn> = members.iter().copied().collect();
            // `contains` agrees with the reference for every observed AS,
            // member or not (binary search vs bit probe per row form).
            for &candidate in &all {
                prop_assert_eq!(
                    dense.contains(*asn, candidate),
                    Some(expect.contains(&candidate))
                );
            }
            prop_assert_eq!(dense.contains(*asn, Asn(u32::MAX)), Some(false));
            prop_assert_eq!(dense.members(*asn), Some(expect));
            prop_assert_eq!(sizes.get(*asn), Some(members.len()));
        }
        // Size iteration stays in strictly ascending ASN order.
        let order: Vec<Asn> = sizes.iter().map(|(a, _)| a).collect();
        prop_assert!(order.windows(2).all(|w| w[0] < w[1]));
    }
}
