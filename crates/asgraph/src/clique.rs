//! Tier-1 clique inference (the first stage of the ASRank pipeline).
//!
//! Following Luckie et al. 2013: rank ASes by transit degree, find the largest
//! clique among the top candidates with Bron–Kerbosch, then greedily extend it
//! in rank order with ASes fully meshed with the current members.

use crate::asn::Asn;
use crate::link::Link;
use crate::paths::PathStats;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Parameters for clique inference.
#[derive(Debug, Clone, Copy)]
pub struct CliqueParams {
    /// Size of the seed candidate set (top-N by transit degree).
    pub seed_candidates: usize,
    /// How far down the transit-degree ranking the greedy extension scans.
    pub extension_scan: usize,
}

impl Default for CliqueParams {
    fn default() -> Self {
        CliqueParams {
            seed_candidates: 15,
            extension_scan: 60,
        }
    }
}

/// Infers the provider-free clique at the top of the hierarchy from observed
/// path statistics.
///
/// Returns the members sorted by ASN. Empty input yields an empty clique.
#[must_use]
pub fn infer_clique(stats: &PathStats, params: CliqueParams) -> BTreeSet<Asn> {
    let ranking = stats.transit_degree_ranking();
    if ranking.is_empty() {
        return BTreeSet::new();
    }

    // Adjacency restricted to the scan window.
    let window: Vec<Asn> = ranking
        .iter()
        .copied()
        .take(params.extension_scan.max(params.seed_candidates))
        .collect();
    let window_set: HashSet<Asn> = window.iter().copied().collect();
    let mut adj: HashMap<Asn, HashSet<Asn>> = window.iter().map(|a| (*a, HashSet::new())).collect();
    for link in stats.links() {
        let (a, b) = link.endpoints();
        if window_set.contains(&a) && window_set.contains(&b) {
            adj.entry(a).or_default().insert(b);
            adj.entry(b).or_default().insert(a);
        }
    }

    // Largest clique among the seed candidates (Bron–Kerbosch with pivoting),
    // constrained to contain the top-ranked AS — Luckie et al. seed the
    // clique with the largest-transit-degree AS.
    let seeds: Vec<Asn> = window
        .iter()
        .copied()
        .take(params.seed_candidates)
        .collect();
    // breval-lint: allow(L009) -- ranking is non-empty: guarded by the is_empty early return above
    let top = ranking[0];
    let rank: HashMap<Asn, usize> = ranking.iter().enumerate().map(|(i, a)| (*a, i)).collect();
    let top_neighbors = adj.get(&top).cloned().unwrap_or_default();
    let mut best: Vec<Asn> = vec![top];
    let mut r = vec![top];
    let p: HashSet<Asn> = seeds
        .iter()
        .copied()
        .filter(|s| top_neighbors.contains(s))
        .collect();
    let x = HashSet::new();
    bron_kerbosch(&adj, &rank, &mut r, p, x, &mut best);

    let mut clique: BTreeSet<Asn> = best.into_iter().collect();

    // Greedy extension in rank order.
    for asn in &window {
        if clique.contains(asn) {
            continue;
        }
        let neighbors = match adj.get(asn) {
            Some(n) => n,
            None => continue,
        };
        if clique.iter().all(|m| neighbors.contains(m)) {
            clique.insert(*asn);
        }
    }
    clique
}

fn bron_kerbosch(
    adj: &HashMap<Asn, HashSet<Asn>>,
    rank: &HashMap<Asn, usize>,
    r: &mut Vec<Asn>,
    mut p: HashSet<Asn>,
    mut x: HashSet<Asn>,
    best: &mut Vec<Asn>,
) {
    let rank_of = |a: &Asn| rank.get(a).copied().unwrap_or(usize::MAX);
    let rank_sum = |v: &[Asn]| -> usize { v.iter().map(|a| rank_of(a).min(1 << 20)).sum() };
    if p.is_empty() && x.is_empty() {
        // Bigger clique wins; ties go to the better-ranked (lower rank sum)
        // member set — deterministic regardless of set-iteration order.
        if r.len() > best.len() || (r.len() == best.len() && rank_sum(r) < rank_sum(best)) {
            *best = r.clone();
        }
        return;
    }
    // Pivot: the candidate with the most neighbors in P (ties by rank).
    let pivot = p
        .iter()
        .chain(x.iter())
        .max_by_key(|v| {
            let nbrs = adj
                .get(v)
                .map(|n| n.iter().filter(|u| p.contains(u)).count())
                .unwrap_or(0);
            (nbrs, std::cmp::Reverse(rank_of(v)))
        })
        .copied();
    let mut candidates: Vec<Asn> = match pivot {
        Some(pv) => {
            let pv_nbrs = adj.get(&pv).cloned().unwrap_or_default();
            p.iter().filter(|v| !pv_nbrs.contains(v)).copied().collect()
        }
        None => p.iter().copied().collect(),
    };
    candidates.sort_by_key(|a| (rank_of(a), a.0));
    for v in candidates {
        let nbrs = adj.get(&v).cloned().unwrap_or_default();
        r.push(v);
        let p2: HashSet<Asn> = p.intersection(&nbrs).copied().collect();
        let x2: HashSet<Asn> = x.intersection(&nbrs).copied().collect();
        bron_kerbosch(adj, rank, r, p2, x2, best);
        r.pop();
        p.remove(&v);
        x.insert(v);
    }
}

/// Convenience: `true` if `link` connects two clique members.
#[must_use]
pub fn is_clique_link(clique: &BTreeSet<Asn>, link: Link) -> bool {
    clique.contains(&link.a()) && clique.contains(&link.b())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{AsPath, PathSet};

    /// Builds paths whose interior transit structure makes ASes 1,2,3 the
    /// fully-meshed top tier, with 4 a high-degree AS *not* meshed with 3.
    fn sample_stats() -> PathStats {
        let mut ps = PathSet::new();
        let mk = |hops: &[u32]| AsPath::new(hops.iter().map(|&h| Asn(h)).collect());
        // Clique mesh traffic: 1-2, 1-3, 2-3, each in transit positions.
        ps.push(Asn(10), mk(&[10, 1, 2, 20]));
        ps.push(Asn(10), mk(&[10, 1, 3, 30]));
        ps.push(Asn(11), mk(&[11, 2, 3, 31]));
        ps.push(Asn(11), mk(&[11, 2, 1, 21]));
        ps.push(Asn(12), mk(&[12, 3, 1, 22]));
        ps.push(Asn(12), mk(&[12, 3, 2, 23]));
        // AS4: well connected to 1 and 2 but not 3.
        ps.push(Asn(13), mk(&[13, 4, 1, 24]));
        ps.push(Asn(13), mk(&[13, 4, 2, 25]));
        // Give 1,2,3 extra transit degree so they rank above 4.
        ps.push(Asn(14), mk(&[14, 1, 40]));
        ps.push(Asn(14), mk(&[14, 2, 41]));
        ps.push(Asn(14), mk(&[14, 3, 42]));
        ps.stats()
    }

    #[test]
    fn finds_top_mesh() {
        let clique = infer_clique(&sample_stats(), CliqueParams::default());
        assert!(clique.contains(&Asn(1)));
        assert!(clique.contains(&Asn(2)));
        assert!(clique.contains(&Asn(3)));
        assert!(!clique.contains(&Asn(4)), "AS4 lacks a link to AS3");
    }

    #[test]
    fn empty_input_yields_empty_clique() {
        let ps = PathSet::new();
        let clique = infer_clique(&ps.stats(), CliqueParams::default());
        assert!(clique.is_empty());
    }

    #[test]
    fn clique_link_test() {
        let clique: BTreeSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        assert!(is_clique_link(&clique, Link::new(Asn(1), Asn(2)).unwrap()));
        assert!(!is_clique_link(&clique, Link::new(Asn(1), Asn(3)).unwrap()));
    }
}
