//! Relationship-labelled AS graph.

use crate::asn::Asn;
use crate::error::GraphError;
use crate::link::Link;
use crate::rel::{Rel, RelClass};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The role of a neighbor relative to a given AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeighborRole {
    /// The neighbor provides transit to the given AS.
    Provider,
    /// The neighbor buys transit from the given AS.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// Same-organisation sibling.
    Sibling,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct Adjacency {
    pub(crate) providers: BTreeSet<Asn>,
    pub(crate) customers: BTreeSet<Asn>,
    pub(crate) peers: BTreeSet<Asn>,
    pub(crate) siblings: BTreeSet<Asn>,
}

/// A relationship-labelled, undirected AS-level graph.
///
/// Deterministic iteration order (BTree-based) so that seeded experiments are
/// reproducible bit-for-bit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsGraph {
    links: BTreeMap<Link, Rel>,
    adj: BTreeMap<Asn, Adjacency>,
}

impl AsGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph from `(link, rel)` pairs, failing on conflicts.
    pub fn from_rels<I>(rels: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (Link, Rel)>,
    {
        let mut g = Self::new();
        for (link, rel) in rels {
            g.add_rel(link, rel)?;
        }
        Ok(g)
    }

    /// Inserts a link with its relationship.
    ///
    /// Re-inserting the same `(link, rel)` pair is a no-op; inserting the same
    /// link with a *different* relationship is a
    /// [`GraphError::ConflictingRelationship`].
    pub fn add_rel(&mut self, link: Link, rel: Rel) -> Result<(), GraphError> {
        if !rel.is_valid_for(link) {
            return Err(GraphError::ProviderNotOnLink {
                link,
                provider: rel.provider().unwrap_or(Asn(0)),
            });
        }
        if let Some(existing) = self.links.get(&link) {
            if *existing == rel {
                return Ok(());
            }
            return Err(GraphError::ConflictingRelationship { link });
        }
        self.links.insert(link, rel);
        let (a, b) = link.endpoints();
        match rel {
            Rel::P2c { provider } => {
                let customer = link.other(provider).expect("validated above");
                self.adj
                    .entry(provider)
                    .or_default()
                    .customers
                    .insert(customer);
                self.adj
                    .entry(customer)
                    .or_default()
                    .providers
                    .insert(provider);
            }
            Rel::P2p => {
                self.adj.entry(a).or_default().peers.insert(b);
                self.adj.entry(b).or_default().peers.insert(a);
            }
            Rel::S2s => {
                self.adj.entry(a).or_default().siblings.insert(b);
                self.adj.entry(b).or_default().siblings.insert(a);
            }
        }
        Ok(())
    }

    /// Number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of ASes with at least one link.
    #[must_use]
    pub fn as_count(&self) -> usize {
        self.adj.len()
    }

    /// `true` if the graph has no links.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The relationship of `link`, if present.
    #[must_use]
    pub fn rel(&self, link: Link) -> Option<Rel> {
        self.links.get(&link).copied()
    }

    /// `true` if the link exists.
    #[must_use]
    pub fn contains_link(&self, link: Link) -> bool {
        self.links.contains_key(&link)
    }

    /// Iterates over all `(link, rel)` pairs in deterministic order.
    pub fn links(&self) -> impl Iterator<Item = (Link, Rel)> + '_ {
        self.links.iter().map(|(l, r)| (*l, *r))
    }

    /// Iterates over all ASes in deterministic order.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates `(asn, adjacency)` pairs in ascending ASN order — the
    /// one-pass source for the CSR build in [`crate::csr::CsrGraph`].
    pub(crate) fn adjacency_entries(&self) -> impl Iterator<Item = (Asn, &Adjacency)> + '_ {
        self.adj.iter().map(|(a, adj)| (*a, adj))
    }

    /// Transit providers of `asn`.
    #[must_use]
    pub fn providers(&self, asn: Asn) -> Vec<Asn> {
        self.adj
            .get(&asn)
            .map(|a| a.providers.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Transit customers of `asn`.
    #[must_use]
    pub fn customers(&self, asn: Asn) -> Vec<Asn> {
        self.adj
            .get(&asn)
            .map(|a| a.customers.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Settlement-free peers of `asn`.
    #[must_use]
    pub fn peers(&self, asn: Asn) -> Vec<Asn> {
        self.adj
            .get(&asn)
            .map(|a| a.peers.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Same-organisation siblings of `asn`.
    #[must_use]
    pub fn siblings(&self, asn: Asn) -> Vec<Asn> {
        self.adj
            .get(&asn)
            .map(|a| a.siblings.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Total node degree (providers + customers + peers + siblings).
    #[must_use]
    pub fn degree(&self, asn: Asn) -> usize {
        self.adj.get(&asn).map_or(0, |a| {
            a.providers.len() + a.customers.len() + a.peers.len() + a.siblings.len()
        })
    }

    /// The role `neighbor` plays relative to `asn`, if they are adjacent.
    #[must_use]
    pub fn role_of(&self, asn: Asn, neighbor: Asn) -> Option<NeighborRole> {
        let link = Link::new(asn, neighbor)?;
        match self.links.get(&link)? {
            Rel::P2c { provider } if *provider == neighbor => Some(NeighborRole::Provider),
            Rel::P2c { .. } => Some(NeighborRole::Customer),
            Rel::P2p => Some(NeighborRole::Peer),
            Rel::S2s => Some(NeighborRole::Sibling),
        }
    }

    /// `true` if `asn` has no customers (a stub in the paper's §5 sense).
    #[must_use]
    pub fn is_stub(&self, asn: Asn) -> bool {
        self.adj.get(&asn).is_none_or(|a| a.customers.is_empty())
    }

    /// Counts links by relationship class.
    #[must_use]
    pub fn count_by_class(&self) -> BTreeMap<RelClass, usize> {
        let mut out = BTreeMap::new();
        for rel in self.links.values() {
            *out.entry(rel.class()).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).expect("distinct endpoints")
    }

    fn p2c(provider: u32) -> Rel {
        Rel::P2c {
            provider: Asn(provider),
        }
    }

    #[test]
    fn roles_and_views() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).expect("fresh link accepts rel"); // 1 provides to 2
        g.add_rel(l(2, 3), p2c(2)).expect("fresh link accepts rel"); // 2 provides to 3
        g.add_rel(l(2, 4), Rel::P2p)
            .expect("fresh link accepts rel");
        g.add_rel(l(2, 5), Rel::S2s)
            .expect("fresh link accepts rel");

        assert_eq!(g.providers(Asn(2)), vec![Asn(1)]);
        assert_eq!(g.customers(Asn(2)), vec![Asn(3)]);
        assert_eq!(g.peers(Asn(2)), vec![Asn(4)]);
        assert_eq!(g.siblings(Asn(2)), vec![Asn(5)]);
        assert_eq!(g.degree(Asn(2)), 4);
        assert_eq!(g.role_of(Asn(2), Asn(1)), Some(NeighborRole::Provider));
        assert_eq!(g.role_of(Asn(1), Asn(2)), Some(NeighborRole::Customer));
        assert_eq!(g.role_of(Asn(2), Asn(4)), Some(NeighborRole::Peer));
        assert_eq!(g.role_of(Asn(2), Asn(5)), Some(NeighborRole::Sibling));
        assert_eq!(g.role_of(Asn(2), Asn(99)), None);
    }

    #[test]
    fn duplicate_same_rel_is_noop() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), Rel::P2p)
            .expect("fresh link accepts rel");
        g.add_rel(l(1, 2), Rel::P2p)
            .expect("fresh link accepts rel");
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn conflicting_rel_is_error() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), Rel::P2p)
            .expect("fresh link accepts rel");
        let err = g.add_rel(l(1, 2), p2c(1)).unwrap_err();
        assert!(matches!(err, GraphError::ConflictingRelationship { .. }));
    }

    #[test]
    fn provider_must_be_endpoint() {
        let mut g = AsGraph::new();
        let err = g.add_rel(l(1, 2), p2c(3)).unwrap_err();
        assert!(matches!(err, GraphError::ProviderNotOnLink { .. }));
    }

    #[test]
    fn stub_detection() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).expect("fresh link accepts rel");
        assert!(!g.is_stub(Asn(1)));
        assert!(g.is_stub(Asn(2)));
        assert!(g.is_stub(Asn(42))); // unknown AS defaults to stub
    }

    #[test]
    fn count_by_class() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).expect("fresh link accepts rel");
        g.add_rel(l(1, 3), p2c(1)).expect("fresh link accepts rel");
        g.add_rel(l(2, 3), Rel::P2p)
            .expect("fresh link accepts rel");
        let counts = g.count_by_class();
        assert_eq!(counts.get(&RelClass::P2c), Some(&2));
        assert_eq!(counts.get(&RelClass::P2p), Some(&1));
        assert_eq!(counts.get(&RelClass::S2s), None);
    }
}
