//! Autonomous-system numbers and the IANA special-purpose ranges.
//!
//! The reserved ranges matter to the paper's §4.2 label cleaning: validation
//! entries involving `AS_TRANS` (23456) or documentation/private ASNs are
//! spurious and must be dropped before evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An autonomous-system number (32-bit, per RFC 6793).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

/// The `AS_TRANS` placeholder (RFC 6793): substituted for 32-bit ASNs in
/// messages to 16-bit-only BGP speakers. It never identifies a real network.
pub const AS_TRANS: Asn = Asn(23456);

/// Why an ASN is unsuitable as a business-relationship endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReservedReason {
    /// ASN 0, reserved by RFC 7607.
    Zero,
    /// `AS_TRANS` (23456), RFC 6793.
    AsTrans,
    /// Documentation range 64496–64511 (RFC 5398) or 65536–65551.
    Documentation,
    /// Private-use range 64512–65534 or 4200000000–4294967294 (RFC 6996).
    PrivateUse,
    /// 65535 and 4294967295, reserved by RFC 7300.
    LastInRange,
    /// 65552–131071, IANA reserved.
    IanaReserved,
}

impl Asn {
    /// `true` if the ASN requires 4-byte encoding on the wire (RFC 6793).
    #[must_use]
    pub fn is_four_byte(self) -> bool {
        self.0 > u32::from(u16::MAX)
    }

    /// `true` for the `AS_TRANS` placeholder.
    #[must_use]
    pub fn is_as_trans(self) -> bool {
        self == AS_TRANS
    }

    /// Classifies the ASN against the IANA special-purpose registry.
    ///
    /// Returns `None` for globally-assignable ASNs, `Some(reason)` otherwise.
    #[must_use]
    pub fn reserved_reason(self) -> Option<ReservedReason> {
        match self.0 {
            0 => Some(ReservedReason::Zero),
            23456 => Some(ReservedReason::AsTrans),
            64496..=64511 | 65536..=65551 => Some(ReservedReason::Documentation),
            64512..=65534 | 4_200_000_000..=4_294_967_294 => Some(ReservedReason::PrivateUse),
            65535 | 4_294_967_295 => Some(ReservedReason::LastInRange),
            65552..=131_071 => Some(ReservedReason::IanaReserved),
            _ => None,
        }
    }

    /// `true` if the ASN should never appear as a business-relationship endpoint.
    #[must_use]
    pub fn is_reserved(self) -> bool {
        self.reserved_reason().is_some()
    }

    /// `true` if the ASN is publicly routable (assignable and not `AS_TRANS`).
    #[must_use]
    pub fn is_public(self) -> bool {
        !self.is_reserved()
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<Asn> for u32 {
    fn from(v: Asn) -> Self {
        v.0
    }
}

/// Error parsing an ASN from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsnError(String);

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN: {:?}", self.0)
    }
}

impl std::error::Error for ParseAsnError {}

impl FromStr for Asn {
    type Err = ParseAsnError;

    /// Parses `"65000"` or the `"AS65000"` form (case-insensitive prefix).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| ParseAsnError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = Asn(3356);
        assert_eq!(a.to_string(), "AS3356");
        assert_eq!("AS3356".parse::<Asn>().unwrap(), a);
        assert_eq!("3356".parse::<Asn>().unwrap(), a);
        assert_eq!("as3356".parse::<Asn>().unwrap(), a);
        assert!("ASxyz".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
    }

    #[test]
    fn as_trans_is_reserved() {
        assert!(AS_TRANS.is_as_trans());
        assert_eq!(AS_TRANS.reserved_reason(), Some(ReservedReason::AsTrans));
        assert!(!AS_TRANS.is_public());
    }

    #[test]
    fn reserved_ranges_match_iana() {
        assert_eq!(Asn(0).reserved_reason(), Some(ReservedReason::Zero));
        assert_eq!(
            Asn(64496).reserved_reason(),
            Some(ReservedReason::Documentation)
        );
        assert_eq!(
            Asn(64511).reserved_reason(),
            Some(ReservedReason::Documentation)
        );
        assert_eq!(
            Asn(64512).reserved_reason(),
            Some(ReservedReason::PrivateUse)
        );
        assert_eq!(
            Asn(65534).reserved_reason(),
            Some(ReservedReason::PrivateUse)
        );
        assert_eq!(
            Asn(65535).reserved_reason(),
            Some(ReservedReason::LastInRange)
        );
        assert_eq!(
            Asn(65536).reserved_reason(),
            Some(ReservedReason::Documentation)
        );
        assert_eq!(
            Asn(65552).reserved_reason(),
            Some(ReservedReason::IanaReserved)
        );
        assert_eq!(
            Asn(4_200_000_000).reserved_reason(),
            Some(ReservedReason::PrivateUse)
        );
        assert_eq!(
            Asn(u32::MAX).reserved_reason(),
            Some(ReservedReason::LastInRange)
        );
    }

    #[test]
    fn ordinary_asns_are_public() {
        for asn in [1, 174, 3356, 23455, 23457, 131_072, 200_000] {
            assert!(Asn(asn).is_public(), "AS{asn} should be public");
        }
    }

    #[test]
    fn four_byte_detection() {
        assert!(!Asn(65535).is_four_byte());
        assert!(Asn(65536).is_four_byte());
    }
}
