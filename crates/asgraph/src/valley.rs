//! Valley-free path validation (Gao 2001).
//!
//! A path is valley-free when, read from the origin outward, it climbs
//! customer→provider links, crosses at most one peering link, and then only
//! descends provider→customer links. Sibling links are transparent (an org's
//! ASes act as one).

use crate::asn::Asn;
use crate::graph::AsGraph;
use crate::rel::Rel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a path violates the valley-free property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValleyViolation {
    /// An uphill (customer→provider) step after the path already went
    /// lateral or downhill — the classic valley.
    UphillAfterTurn {
        /// Index (into the compressed hop list) of the offending step's
        /// receiver.
        at: usize,
    },
    /// A second lateral (peer) step after the path already turned.
    SecondLateral {
        /// Index of the offending step's receiver.
        at: usize,
    },
    /// Two adjacent hops have no link in the graph.
    UnknownLink {
        /// Index of the step's receiver.
        at: usize,
    },
}

impl fmt::Display for ValleyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValleyViolation::UphillAfterTurn { at } => {
                write!(f, "uphill step after the path turned (hop {at})")
            }
            ValleyViolation::SecondLateral { at } => {
                write!(f, "second peering step (hop {at})")
            }
            ValleyViolation::UnknownLink { at } => write!(f, "unknown link at hop {at}"),
        }
    }
}

/// Checks a path (receiver-first, origin-last, prepending tolerated) against
/// `graph`'s relationships.
///
/// Steps are classified from the exporter's perspective walking origin→
/// receiver: customer→provider steps are uphill, peer steps lateral,
/// provider→customer steps downhill, sibling steps neutral.
pub fn check_valley_free(graph: &AsGraph, hops: &[Asn]) -> Result<(), ValleyViolation> {
    let mut compressed: Vec<Asn> = hops.to_vec();
    compressed.dedup();
    // Walk from the origin (end) towards the receiver (front).
    let mut turned = false; // saw a lateral or downhill step already
    for (i, w) in compressed.windows(2).enumerate().rev() {
        // w[1] exported the route to w[0].
        let link = match crate::link::Link::new(w[0], w[1]) {
            Some(l) => l,
            None => continue,
        };
        let rel = graph
            .rel(link)
            .ok_or(ValleyViolation::UnknownLink { at: i })?;
        match rel {
            // Receiver w[0] is the provider: w[1] exported up.
            Rel::P2c { provider } if provider == w[0] => {
                if turned {
                    return Err(ValleyViolation::UphillAfterTurn { at: i });
                }
            }
            // Receiver is the customer: downhill.
            Rel::P2c { .. } => {
                turned = true;
            }
            Rel::P2p => {
                if turned {
                    return Err(ValleyViolation::SecondLateral { at: i });
                }
                turned = true;
            }
            Rel::S2s => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    fn graph() -> AsGraph {
        let mut g = AsGraph::new();
        let l = |a: u32, b: u32| Link::new(Asn(a), Asn(b)).unwrap();
        let p2c = |p: u32| Rel::P2c { provider: Asn(p) };
        // Hierarchy: 1 and 2 are peers at the top; 1→3→5, 2→4.
        g.add_rel(l(1, 2), Rel::P2p).unwrap();
        g.add_rel(l(1, 3), p2c(1)).unwrap();
        g.add_rel(l(3, 5), p2c(3)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(3, 4), Rel::P2p).unwrap();
        g.add_rel(l(5, 6), Rel::S2s).unwrap();
        g
    }

    fn hops(h: &[u32]) -> Vec<Asn> {
        h.iter().map(|&x| Asn(x)).collect()
    }

    #[test]
    fn classic_up_peer_down_is_valley_free() {
        let g = graph();
        // Origin 5 → up 3 → up 1 → peer 2 → down 4.
        assert!(check_valley_free(&g, &hops(&[4, 2, 1, 3, 5])).is_ok());
        // Pure downhill observation.
        assert!(check_valley_free(&g, &hops(&[1, 3, 5])).is_ok());
        // Prepending tolerated.
        assert!(check_valley_free(&g, &hops(&[1, 3, 5, 5, 5])).is_ok());
        // Sibling step is neutral.
        assert!(check_valley_free(&g, &hops(&[1, 3, 5, 6])).is_ok());
    }

    #[test]
    fn valley_is_detected() {
        let g = graph();
        // 4 exported a 2-side route to its peer 3: route went down (2→4) then
        // lateral (4→3): second turn → violation at the 3–4 step.
        assert!(matches!(
            check_valley_free(&g, &hops(&[3, 4, 2])),
            Err(ValleyViolation::SecondLateral { .. })
        ));
        // Up after down: origin 4, down to... 2→4 is down from 2; then 2
        // received from its peer 1 — fine; but 3 exporting a 4-side route up
        // to 1 after the lateral 3–4 step is a valley.
        assert!(matches!(
            check_valley_free(&g, &hops(&[1, 3, 4])),
            Err(ValleyViolation::UphillAfterTurn { .. })
        ));
    }

    #[test]
    fn unknown_link_is_reported() {
        let g = graph();
        assert!(matches!(
            check_valley_free(&g, &hops(&[1, 99])),
            Err(ValleyViolation::UnknownLink { .. })
        ));
    }
}
