//! Customer-cone computations.
//!
//! Two variants are used by the paper:
//!
//! * the **graph customer cone** — everything reachable by following
//!   provider→customer edges from an AS (CAIDA's recursive cone), used to
//!   split ASes into Stub/Transit for §5's topological classes, and
//! * the **provider/peer observed customer cone (PPDC)** — derived from paths:
//!   an AS's cone contains every AS that appears *behind* it on a path where it
//!   was reached from a provider or peer (Luckie et al. 2013). The paper's
//!   Appendix B heatmaps (Figs. 7–8) bin transit links by PPDC size.
//!
//! Both hot kernels run over the dense core ([`crate::index::AsIndexer`] /
//! [`crate::csr::CsrGraph`]): cone sizes come from an allocation-free BFS
//! with per-worker [`ConeScratch`](crate::csr::ConeScratch) state, and PPDC
//! cones are per-AS bitsets (one `u64` word per 64 observed ASes). The
//! original BTree/hash implementations live on in [`baseline`] so the memory
//! benchmark and the equivalence proptests can compare against them.

use crate::asn::Asn;
use crate::csr::{ConeScratch, CsrGraph};
use crate::graph::AsGraph;
use crate::index::AsIndexer;
use crate::link::Link;
use crate::paths::PathSet;
use crate::rel::Rel;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Computes the full customer cone of `asn` over `graph` (self included).
///
/// This is the readable reference implementation; for whole-graph cone sizes
/// use [`customer_cone_sizes`], which runs the dense CSR kernel instead.
#[must_use]
pub fn customer_cone(graph: &AsGraph, asn: Asn) -> BTreeSet<Asn> {
    let mut cone = BTreeSet::new();
    let mut queue = VecDeque::new();
    cone.insert(asn);
    queue.push_back(asn);
    while let Some(current) = queue.pop_front() {
        for customer in graph.customers(current) {
            if cone.insert(customer) {
                queue.push_back(customer);
            }
        }
    }
    cone
}

/// Per-AS cone sizes in dense form: a `Vec<usize>` indexed by the dense id
/// of an [`AsIndexer`]. Iteration is always in ascending ASN order, so no
/// hash-map ordering can leak into downstream output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConeSizes {
    pub(crate) indexer: AsIndexer,
    pub(crate) sizes: Vec<usize>,
}

impl ConeSizes {
    /// Sizes over no ASes (used as the stand-in for unknown scenarios).
    #[must_use]
    pub fn empty() -> Self {
        ConeSizes::default()
    }

    /// Builds from an indexer and its id-aligned size vector.
    ///
    /// # Panics
    /// If `sizes.len() != indexer.len()`.
    #[must_use]
    pub fn from_parts(indexer: AsIndexer, sizes: Vec<usize>) -> Self {
        assert_eq!(
            indexer.len(),
            sizes.len(),
            "ConeSizes requires one size per interned AS"
        );
        ConeSizes { indexer, sizes }
    }

    /// The indexer the sizes are aligned to.
    #[must_use]
    pub fn indexer(&self) -> &AsIndexer {
        &self.indexer
    }

    /// The cone size of `asn`, or `None` if it was not observed.
    #[must_use]
    pub fn get(&self, asn: Asn) -> Option<usize> {
        self.indexer.id(asn).map(|id| self.sizes[id as usize])
    }

    /// The cone size behind a dense id.
    ///
    /// # Panics
    /// If `id` is out of range for the indexer.
    #[must_use]
    pub fn by_id(&self, id: u32) -> usize {
        self.sizes[id as usize]
    }

    /// Number of ASes with a recorded size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` if no sizes are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Iterates `(asn, size)` pairs in ascending ASN order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, usize)> + '_ {
        self.indexer.iter().zip(self.sizes.iter().copied())
    }
}

/// Customer-cone sizes for every AS in the graph (self included).
///
/// Builds the [`CsrGraph`] mirror once and fans the per-AS BFS walks out
/// over the work-stealing pool with one reusable
/// [`ConeScratch`](crate::csr::ConeScratch) per worker, so the steady state
/// allocates nothing. Results are identical at any thread count.
///
/// **Deprecated for analysis code** (deepcheck L012): every call rebuilds
/// the CSR mirror from scratch. Pipeline code must share the scenario
/// snapshot's CSR via `Scenario::cone_sizes_arc` or call
/// [`customer_cone_sizes_csr`] on a prebuilt graph.
#[must_use]
pub fn customer_cone_sizes(graph: &AsGraph) -> ConeSizes {
    customer_cone_sizes_csr(&CsrGraph::build(graph))
}

/// [`customer_cone_sizes`] for a prebuilt [`CsrGraph`].
#[must_use]
pub fn customer_cone_sizes_csr(csr: &CsrGraph) -> ConeSizes {
    let n = csr.node_count();
    let sizes = breval_par::parallel_map_init(n, ConeScratch::new, |scratch, i| {
        csr.customer_cone_size(i as u32, scratch)
    });
    breval_obs::counter("cone_sizes_computed", n as u64);
    ConeSizes::from_parts(csr.indexer().clone(), sizes)
}

/// The number of members below which a PPDC row is stored sparse. A sparse
/// row costs `4·m` bytes against `n/8` for a bitset row, so the break-even
/// density is `m = n/32`; the floor keeps tiny graphs from paying the
/// binary-search path for rows a single word could hold.
#[must_use]
pub(crate) fn sparse_cutoff(n: usize) -> usize {
    (n / 32).max(8)
}

/// One AS's explicit PPDC cone row. The representation is a deterministic
/// function of the member count: below [`sparse_cutoff`] the row is a sorted
/// id list, at or above it a fixed-width bitset — so equal cones always
/// serialize byte-identically regardless of insertion history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PpdcRow {
    /// Strictly ascending dense ids, the owner's own id included.
    Sparse(Box<[u32]>),
    /// One bit per observed AS (`n.div_ceil(64)` words, tail bits clear).
    Dense(Box<[u64]>),
}

/// Provider/peer observed customer cones in hybrid compressed form: one
/// lazily allocated [`PpdcRow`] per AS that was actually reached from a
/// provider or peer — a sorted-id list while the cone is sparse, a dense
/// bitset once it crosses [`sparse_cutoff`]. ASes never reached that way
/// still own the implicit self-cone `{asn}` (size 1) without allocating a
/// row. At million-AS scale almost every cone is sparse, which is what keeps
/// the table `O(total members)` instead of `O(n²/8)` bytes.
#[derive(Debug, Clone, Default)]
pub struct PpdcCones {
    pub(crate) indexer: AsIndexer,
    /// Per-AS row; `None` means the implicit self-only cone.
    pub(crate) rows: Vec<Option<PpdcRow>>,
}

impl PpdcCones {
    /// The indexer over all path-observed ASes.
    #[must_use]
    pub fn indexer(&self) -> &AsIndexer {
        &self.indexer
    }

    /// Cone size behind a dense id (list length or popcount of the row;
    /// 1 without a row).
    ///
    /// # Panics
    /// If `id` is out of range for the indexer.
    #[must_use]
    pub fn size_by_id(&self, id: u32) -> usize {
        match &self.rows[id as usize] {
            None => 1,
            Some(PpdcRow::Sparse(ids)) => ids.len(),
            Some(PpdcRow::Dense(words)) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// The cone size of `asn`, or `None` if it was never observed on a path.
    #[must_use]
    pub fn size(&self, asn: Asn) -> Option<usize> {
        self.indexer.id(asn).map(|id| self.size_by_id(id))
    }

    /// Whether `member` is in the PPDC cone of `asn`, or `None` if `asn`
    /// itself was never observed on a path. Allocation-free — a binary
    /// search on sparse rows, a bit probe on dense ones (rows carry the
    /// self entry; a rowless AS owns the implicit `{asn}` cone) — so it is
    /// safe on the lock-free query path.
    #[must_use]
    pub fn contains(&self, asn: Asn, member: Asn) -> Option<bool> {
        let id = self.indexer.id(asn)?;
        let row = self.rows.get(id as usize)?;
        Some(match (row, self.indexer.id(member)) {
            (None, _) => member == asn,
            (Some(PpdcRow::Sparse(ids)), Some(m)) => ids.binary_search(&m).is_ok(),
            (Some(PpdcRow::Dense(words)), Some(m)) => words
                .get(m as usize / 64)
                .is_some_and(|word| word & (1u64 << (m % 64)) != 0),
            (Some(_), None) => false,
        })
    }

    /// The cone members of `asn` (self included), or `None` if unobserved.
    #[must_use]
    pub fn members(&self, asn: Asn) -> Option<BTreeSet<Asn>> {
        let id = self.indexer.id(asn)?;
        Some(match &self.rows[id as usize] {
            None => BTreeSet::from([asn]),
            Some(PpdcRow::Sparse(ids)) => ids.iter().map(|&m| self.indexer.asn(m)).collect(),
            Some(PpdcRow::Dense(words)) => {
                let mut out = BTreeSet::new();
                for (word_idx, &word) in words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let bit = bits.trailing_zeros();
                        out.insert(self.indexer.asn((word_idx * 64) as u32 + bit));
                        bits &= bits - 1;
                    }
                }
                out
            }
        })
    }

    /// Collapses the cones into their sizes (popcount per row).
    #[must_use]
    pub fn sizes(&self) -> ConeSizes {
        let sizes = (0..self.rows.len() as u32)
            .map(|id| self.size_by_id(id))
            .collect();
        ConeSizes::from_parts(self.indexer.clone(), sizes)
    }

    /// Storage accounting for the hybrid representation: how many rows
    /// landed on each form and what they cost against the all-bitset
    /// layout this replaced (`BENCH_scale.json` records the ratio).
    #[must_use]
    pub fn storage_stats(&self) -> PpdcStorageStats {
        let words_per_row = self.indexer.len().div_ceil(64);
        let mut stats = PpdcStorageStats::default();
        for row in &self.rows {
            match row {
                None => {}
                Some(PpdcRow::Sparse(ids)) => {
                    stats.sparse_rows += 1;
                    stats.sparse_members += ids.len();
                }
                Some(PpdcRow::Dense(_)) => stats.dense_rows += 1,
            }
        }
        stats.hybrid_bytes = stats.sparse_members * 4 + stats.dense_rows * words_per_row * 8;
        stats.flat_bytes = (stats.sparse_rows + stats.dense_rows) * words_per_row * 8;
        stats
    }
}

/// What the hybrid PPDC rows cost on the heap, against the flat all-bitset
/// layout (see [`PpdcCones::storage_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PpdcStorageStats {
    /// Rows stored as sorted id lists (below the density cutoff).
    pub sparse_rows: usize,
    /// Rows stored as fixed-width bitsets (at or above the cutoff).
    pub dense_rows: usize,
    /// Total member entries across all sparse rows.
    pub sparse_members: usize,
    /// Heap bytes behind the hybrid rows (`4·sparse_members + 8·words·dense_rows`).
    pub hybrid_bytes: usize,
    /// What the same rows would cost as all-dense bitsets (`8·words·rows`).
    pub flat_bytes: usize,
}

/// Computes the provider/peer observed customer cones (PPDC) from observed
/// paths and a relationship labelling.
///
/// For each path `… u x d1 d2 …` where `u` is a provider or peer of `x`
/// according to `rels`, every `di` is placed into `x`'s cone. The AS itself is
/// always a member of its own cone.
#[must_use]
pub fn ppdc_cones(paths: &PathSet, rels: &BTreeMap<Link, Rel>) -> PpdcCones {
    // Intern every AS observed on a multi-hop compressed path — exactly the
    // key set of `PathStats::ases` (only `windows(2)` contribute degree),
    // derived here without building the full path statistics. One compression
    // buffer is reused across all paths, so the whole build allocates the
    // indexer, the row table, and one bitset row per provider/peer-reached
    // AS — nothing per path.
    let mut buf: Vec<Asn> = Vec::new();
    let mut observed: Vec<Asn> = Vec::new();
    for op in paths.paths() {
        compress_into(op.path.hops(), &mut buf);
        if buf.len() >= 2 {
            observed.extend_from_slice(&buf);
        }
    }
    let indexer = AsIndexer::from_unsorted(observed);
    let n = indexer.len();
    let words = n.div_ceil(64);
    let cutoff = sparse_cutoff(n);
    let mut rows: Vec<Option<BuildRow>> = vec![None; n];
    for op in paths.paths() {
        compress_into(op.path.hops(), &mut buf);
        let c = buf.as_slice();
        for i in 1..c.len() {
            let upstream = c[i - 1];
            let x = c[i];
            let Some(link) = Link::new(upstream, x) else {
                continue;
            };
            let from_provider_or_peer = match rels.get(&link) {
                Some(Rel::P2p) => true,
                Some(Rel::P2c { provider }) => *provider == upstream,
                _ => false,
            };
            if from_provider_or_peer {
                let x_id = indexer.id(x).expect("path hop is an observed AS");
                // Self-membership, matching the `or_default().insert(asn)`
                // of the hash-based baseline.
                let row = rows[x_id as usize].get_or_insert_with(|| BuildRow::Sparse(vec![x_id]));
                for &d in &c[i + 1..] {
                    let d_id = indexer.id(d).expect("path hop is an observed AS");
                    row.insert(d_id, cutoff, words);
                }
            }
        }
    }
    let rows = rows
        .into_iter()
        .map(|row| row.map(|r| r.finish(cutoff, words)))
        .collect();
    PpdcCones { indexer, rows }
}

/// Build-time accumulator behind one PPDC row. Starts as an unsorted id
/// list (duplicates allowed), compacts in place when it doubles past the
/// density cutoff, and converts to a bitset once the *unique* member count
/// reaches the cutoff — so the peak build footprint of a sparse row is
/// `O(cutoff)` and inserts stay amortized `O(1)` either way.
#[derive(Debug, Clone)]
enum BuildRow {
    /// Unsorted dense ids, possibly with duplicates; self id always present.
    Sparse(Vec<u32>),
    /// Fixed-width bitset, identical to the final dense form.
    Dense(Box<[u64]>),
}

impl BuildRow {
    fn insert(&mut self, id: u32, cutoff: usize, words: usize) {
        match self {
            BuildRow::Sparse(ids) => {
                ids.push(id);
                if ids.len() >= 2 * cutoff {
                    ids.sort_unstable();
                    ids.dedup();
                    if ids.len() >= cutoff {
                        *self = BuildRow::Dense(to_bitset(ids, words));
                    }
                }
            }
            BuildRow::Dense(bits) => bits[id as usize / 64] |= 1u64 << (id % 64),
        }
    }

    /// Seals the accumulator into the canonical [`PpdcRow`] form: dense iff
    /// the unique member count reached `cutoff`. A row that went dense
    /// during the build stays dense — membership only ever grows, so its
    /// final count is necessarily at or above the cutoff too.
    fn finish(self, cutoff: usize, words: usize) -> PpdcRow {
        match self {
            BuildRow::Sparse(mut ids) => {
                ids.sort_unstable();
                ids.dedup();
                if ids.len() >= cutoff {
                    PpdcRow::Dense(to_bitset(&ids, words))
                } else {
                    PpdcRow::Sparse(ids.into_boxed_slice())
                }
            }
            BuildRow::Dense(bits) => PpdcRow::Dense(bits),
        }
    }
}

fn to_bitset(ids: &[u32], words: usize) -> Box<[u64]> {
    let mut bits = vec![0u64; words].into_boxed_slice();
    for &id in ids {
        bits[id as usize / 64] |= 1u64 << (id % 64);
    }
    bits
}

/// Writes the prepend-compressed form of `hops` into `buf` (cleared first),
/// reusing its capacity across calls.
fn compress_into(hops: &[Asn], buf: &mut Vec<Asn>) {
    buf.clear();
    for &hop in hops {
        if buf.last() != Some(&hop) {
            buf.push(hop);
        }
    }
}

/// PPDC cone *sizes* (see [`ppdc_cones`]), in dense ASN-ordered form.
#[must_use]
pub fn ppdc_sizes(paths: &PathSet, rels: &BTreeMap<Link, Rel>) -> ConeSizes {
    let sizes = ppdc_cones(paths, rels).sizes();
    breval_obs::counter("ppdc_sizes_computed", sizes.len() as u64);
    sizes
}

/// BTree/hash reference implementations of the cone kernels, kept callable
/// so the memory benchmark (`BENCH_mem.json`) and the CSR equivalence
/// proptests can measure and verify the dense kernels against them.
pub mod baseline {
    use super::*;
    use std::collections::{HashMap, HashSet};

    /// [`customer_cone_sizes`](super::customer_cone_sizes) as shipped before
    /// the dense core: one fresh `BTreeSet` BFS per AS.
    #[must_use]
    pub fn customer_cone_sizes_btree(graph: &AsGraph) -> HashMap<Asn, usize> {
        let ases: Vec<Asn> = graph.ases().collect();
        let sizes: Vec<usize> =
            breval_par::parallel_map(ases.len(), |i| customer_cone(graph, ases[i]).len());
        ases.into_iter().zip(sizes).collect()
    }

    /// [`ppdc_cones`](super::ppdc_cones) as shipped before the dense core:
    /// per-AS `HashSet` cones in a `HashMap`.
    #[must_use]
    pub fn ppdc_cones_hash(
        paths: &PathSet,
        rels: &BTreeMap<Link, Rel>,
    ) -> HashMap<Asn, HashSet<Asn>> {
        let mut cones: HashMap<Asn, HashSet<Asn>> = HashMap::new();
        for op in paths.paths() {
            let c = op.path.compressed();
            for i in 1..c.len() {
                let upstream = c[i - 1];
                let x = c[i];
                let Some(link) = Link::new(upstream, x) else {
                    continue;
                };
                let from_provider_or_peer = match rels.get(&link) {
                    Some(Rel::P2p) => true,
                    Some(Rel::P2c { provider }) => *provider == upstream,
                    _ => false,
                };
                if from_provider_or_peer {
                    let cone = cones.entry(x).or_default();
                    for &d in &c[i + 1..] {
                        cone.insert(d);
                    }
                }
            }
        }
        // Every observed AS is in its own cone.
        let stats = paths.stats();
        for asn in stats.ases() {
            cones.entry(asn).or_default().insert(asn);
        }
        cones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::AsPath;

    fn l(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).unwrap()
    }

    fn p2c(provider: u32) -> Rel {
        Rel::P2c {
            provider: Asn(provider),
        }
    }

    #[test]
    fn cone_follows_customers_transitively() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).unwrap();
        g.add_rel(l(2, 3), p2c(2)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(1, 5), Rel::P2p).unwrap(); // peers do not extend the cone

        let cone = customer_cone(&g, Asn(1));
        assert_eq!(
            cone.into_iter().collect::<Vec<_>>(),
            vec![Asn(1), Asn(2), Asn(3), Asn(4)]
        );
        assert_eq!(customer_cone(&g, Asn(3)).len(), 1);
        let sizes = customer_cone_sizes(&g);
        assert_eq!(sizes.get(Asn(1)), Some(4));
        assert_eq!(sizes.get(Asn(2)), Some(3));
        assert_eq!(sizes.get(Asn(5)), Some(1));
        assert_eq!(sizes.get(Asn(99)), None);
    }

    #[test]
    fn cone_handles_multihoming_without_double_count() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).unwrap();
        g.add_rel(l(1, 3), p2c(1)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(3, 4), p2c(3)).unwrap(); // 4 multihomes to 2 and 3
        assert_eq!(customer_cone(&g, Asn(1)).len(), 4);
    }

    #[test]
    fn cone_sizes_iterate_in_ascending_asn_order() {
        // Regression for the old HashMap return type: iteration order must be
        // the ASN order, never a hash order.
        let mut g = AsGraph::new();
        g.add_rel(l(30, 2), p2c(30)).unwrap();
        g.add_rel(l(2, 17), p2c(2)).unwrap();
        g.add_rel(l(9, 17), Rel::P2p).unwrap();
        let sizes = customer_cone_sizes(&g);
        let order: Vec<Asn> = sizes.iter().map(|(a, _)| a).collect();
        assert_eq!(order, vec![Asn(2), Asn(9), Asn(17), Asn(30)]);
        let as_map: Vec<(Asn, usize)> = sizes.iter().collect();
        assert_eq!(
            as_map,
            vec![(Asn(2), 2), (Asn(9), 1), (Asn(17), 1), (Asn(30), 3)]
        );
    }

    #[test]
    fn dense_cone_sizes_match_btree_baseline() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).unwrap();
        g.add_rel(l(2, 3), p2c(2)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(4, 5), p2c(4)).unwrap();
        g.add_rel(l(1, 6), Rel::P2p).unwrap();
        let dense = customer_cone_sizes(&g);
        let reference = baseline::customer_cone_sizes_btree(&g);
        assert_eq!(dense.len(), reference.len());
        for (asn, size) in dense.iter() {
            assert_eq!(reference.get(&asn), Some(&size));
        }
    }

    #[test]
    fn ppdc_counts_only_provider_or_peer_upstream() {
        let mut rels = BTreeMap::new();
        rels.insert(l(1, 2), p2c(1)); // 1 provider of 2
        rels.insert(l(2, 3), p2c(2)); // 2 provider of 3
        rels.insert(l(4, 2), p2c(2)); // 2 provider of 4 → upstream 4→2 is customer side

        let mut ps = PathSet::new();
        // VP 1: 1 (provider of 2) → 2 → 3 puts 3 into 2's PPDC.
        ps.push(Asn(1), AsPath::new(vec![Asn(1), Asn(2), Asn(3)]));
        // VP 4: 4 (customer of 2) → 2 → 3 must NOT grow 2's PPDC.
        ps.push(Asn(4), AsPath::new(vec![Asn(4), Asn(2), Asn(3)]));

        let cones = ppdc_cones(&ps, &rels);
        let cone2 = cones.members(Asn(2)).unwrap();
        assert_eq!(cone2.into_iter().collect::<Vec<_>>(), vec![Asn(2), Asn(3)]);
        // AS3 observed only at path tails still has the self cone.
        assert_eq!(cones.members(Asn(3)).unwrap().len(), 1);
        let sizes = ppdc_sizes(&ps, &rels);
        assert_eq!(sizes.get(Asn(2)), Some(2));
    }

    #[test]
    fn ppdc_peer_upstream_counts() {
        let mut rels = BTreeMap::new();
        rels.insert(l(1, 2), Rel::P2p);
        rels.insert(l(2, 3), p2c(2));
        let mut ps = PathSet::new();
        ps.push(Asn(1), AsPath::new(vec![Asn(1), Asn(2), Asn(3)]));
        let sizes = ppdc_sizes(&ps, &rels);
        assert_eq!(sizes.get(Asn(2)), Some(2));
    }

    #[test]
    fn hybrid_rows_pick_representation_by_density() {
        // One long provider chain 1→2→…→12: AS2's cone holds 11 members
        // (itself plus everything behind it). With 12 observed ASes the
        // cutoff floor of 8 applies, so the big cones go dense while the
        // short tail cones stay sparse.
        let chain: Vec<u32> = (1..=12).collect();
        let mut rels = BTreeMap::new();
        for w in chain.windows(2) {
            rels.insert(l(w[0], w[1]), p2c(w[0]));
        }
        let mut ps = PathSet::new();
        ps.push(Asn(1), AsPath::new(chain.iter().map(|&a| Asn(a)).collect()));
        let cones = ppdc_cones(&ps, &rels);
        assert_eq!(sparse_cutoff(cones.indexer().len()), 8);
        let id = |a: u32| cones.indexer().id(Asn(a)).unwrap() as usize;
        assert!(matches!(cones.rows[id(2)], Some(PpdcRow::Dense(_))));
        assert!(matches!(cones.rows[id(11)], Some(PpdcRow::Sparse(_))));
        assert_eq!(cones.size(Asn(2)), Some(11));
        assert_eq!(cones.size(Asn(11)), Some(2));
        assert_eq!(cones.contains(Asn(2), Asn(12)), Some(true));
        assert_eq!(cones.contains(Asn(11), Asn(12)), Some(true));
        assert_eq!(cones.contains(Asn(11), Asn(3)), Some(false));
        // Both forms agree with the hash baseline, member for member.
        let reference = baseline::ppdc_cones_hash(&ps, &rels);
        for (&asn, members) in &reference {
            let expect: BTreeSet<Asn> = members.iter().copied().collect();
            assert_eq!(cones.members(asn), Some(expect), "cone of {asn:?}");
        }
    }

    #[test]
    fn repeated_paths_compact_without_going_dense() {
        // The same short path over and over pushes far past the 2×cutoff
        // compaction trigger with only three unique members — the row must
        // dedup in place and stay sparse.
        let mut rels = BTreeMap::new();
        rels.insert(l(1, 2), p2c(1));
        let mut ps = PathSet::new();
        for _ in 0..40 {
            ps.push(Asn(1), AsPath::new(vec![Asn(1), Asn(2), Asn(3), Asn(4)]));
        }
        let cones = ppdc_cones(&ps, &rels);
        let id2 = cones.indexer().id(Asn(2)).unwrap() as usize;
        match &cones.rows[id2] {
            Some(PpdcRow::Sparse(ids)) => assert_eq!(ids.len(), 3),
            other => panic!("expected a sparse row, got {other:?}"),
        }
        assert_eq!(
            cones.members(Asn(2)).unwrap(),
            BTreeSet::from([Asn(2), Asn(3), Asn(4)])
        );
    }

    #[test]
    fn ppdc_bitsets_match_hash_baseline() {
        let mut rels = BTreeMap::new();
        rels.insert(l(1, 2), p2c(1));
        rels.insert(l(2, 3), p2c(2));
        rels.insert(l(3, 4), p2c(3));
        rels.insert(l(5, 2), Rel::P2p);
        let mut ps = PathSet::new();
        ps.push(Asn(1), AsPath::new(vec![Asn(1), Asn(2), Asn(3), Asn(4)]));
        ps.push(Asn(5), AsPath::new(vec![Asn(5), Asn(2), Asn(3)]));
        let dense = ppdc_cones(&ps, &rels);
        let reference = baseline::ppdc_cones_hash(&ps, &rels);
        assert_eq!(dense.indexer().len(), reference.len());
        for (&asn, members) in &reference {
            let expect: BTreeSet<Asn> = members.iter().copied().collect();
            assert_eq!(dense.members(asn), Some(expect), "cone of {asn:?}");
        }
    }
}
