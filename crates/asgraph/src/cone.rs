//! Customer-cone computations.
//!
//! Two variants are used by the paper:
//!
//! * the **graph customer cone** — everything reachable by following
//!   provider→customer edges from an AS (CAIDA's recursive cone), used to
//!   split ASes into Stub/Transit for §5's topological classes, and
//! * the **provider/peer observed customer cone (PPDC)** — derived from paths:
//!   an AS's cone contains every AS that appears *behind* it on a path where it
//!   was reached from a provider or peer (Luckie et al. 2013). The paper's
//!   Appendix B heatmaps (Figs. 7–8) bin transit links by PPDC size.

use crate::asn::Asn;
use crate::graph::AsGraph;
use crate::link::Link;
use crate::paths::PathSet;
use crate::rel::Rel;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Computes the full customer cone of `asn` over `graph` (self included).
#[must_use]
pub fn customer_cone(graph: &AsGraph, asn: Asn) -> BTreeSet<Asn> {
    let mut cone = BTreeSet::new();
    let mut queue = VecDeque::new();
    cone.insert(asn);
    queue.push_back(asn);
    while let Some(current) = queue.pop_front() {
        for customer in graph.customers(current) {
            if cone.insert(customer) {
                queue.push_back(customer);
            }
        }
    }
    cone
}

/// Customer-cone sizes for every AS in the graph (self included). Per-AS
/// cone walks are independent, so they fan out over the work-stealing pool
/// (`breval_par`); results are identical at any thread count.
#[must_use]
pub fn customer_cone_sizes(graph: &AsGraph) -> HashMap<Asn, usize> {
    let ases: Vec<Asn> = graph.ases().collect();
    let sizes: Vec<usize> =
        breval_par::parallel_map(ases.len(), |i| customer_cone(graph, ases[i]).len());
    breval_obs::counter("cone_sizes_computed", ases.len() as u64);
    ases.into_iter().zip(sizes).collect()
}

/// Computes the provider/peer observed customer cones (PPDC) from observed
/// paths and a relationship labelling.
///
/// For each path `… u x d1 d2 …` where `u` is a provider or peer of `x`
/// according to `rels`, every `di` is placed into `x`'s cone. The AS itself is
/// always a member of its own cone.
#[must_use]
pub fn ppdc_cones(paths: &PathSet, rels: &HashMap<Link, Rel>) -> HashMap<Asn, HashSet<Asn>> {
    let mut cones: HashMap<Asn, HashSet<Asn>> = HashMap::new();
    for op in paths.paths() {
        let c = op.path.compressed();
        for i in 1..c.len() {
            let upstream = c[i - 1];
            let x = c[i];
            let Some(link) = Link::new(upstream, x) else {
                continue;
            };
            let from_provider_or_peer = match rels.get(&link) {
                Some(Rel::P2p) => true,
                Some(Rel::P2c { provider }) => *provider == upstream,
                _ => false,
            };
            if from_provider_or_peer {
                let cone = cones.entry(x).or_default();
                for &d in &c[i + 1..] {
                    cone.insert(d);
                }
            }
        }
    }
    // Every observed AS is in its own cone.
    let stats = paths.stats();
    for asn in stats.ases() {
        cones.entry(asn).or_default().insert(asn);
    }
    cones
}

/// PPDC cone *sizes* (see [`ppdc_cones`]).
#[must_use]
pub fn ppdc_sizes(paths: &PathSet, rels: &HashMap<Link, Rel>) -> HashMap<Asn, usize> {
    let sizes: HashMap<Asn, usize> = ppdc_cones(paths, rels)
        .into_iter()
        .map(|(a, s)| (a, s.len()))
        .collect();
    breval_obs::counter("ppdc_sizes_computed", sizes.len() as u64);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::AsPath;

    fn l(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).unwrap()
    }

    fn p2c(provider: u32) -> Rel {
        Rel::P2c {
            provider: Asn(provider),
        }
    }

    #[test]
    fn cone_follows_customers_transitively() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).unwrap();
        g.add_rel(l(2, 3), p2c(2)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(1, 5), Rel::P2p).unwrap(); // peers do not extend the cone

        let cone = customer_cone(&g, Asn(1));
        assert_eq!(
            cone.into_iter().collect::<Vec<_>>(),
            vec![Asn(1), Asn(2), Asn(3), Asn(4)]
        );
        assert_eq!(customer_cone(&g, Asn(3)).len(), 1);
        let sizes = customer_cone_sizes(&g);
        assert_eq!(sizes[&Asn(1)], 4);
        assert_eq!(sizes[&Asn(2)], 3);
        assert_eq!(sizes[&Asn(5)], 1);
    }

    #[test]
    fn cone_handles_multihoming_without_double_count() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).unwrap();
        g.add_rel(l(1, 3), p2c(1)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(3, 4), p2c(3)).unwrap(); // 4 multihomes to 2 and 3
        assert_eq!(customer_cone(&g, Asn(1)).len(), 4);
    }

    #[test]
    fn ppdc_counts_only_provider_or_peer_upstream() {
        let mut rels = HashMap::new();
        rels.insert(l(1, 2), p2c(1)); // 1 provider of 2
        rels.insert(l(2, 3), p2c(2)); // 2 provider of 3
        rels.insert(l(4, 2), p2c(2)); // 2 provider of 4 → upstream 4→2 is customer side

        let mut ps = PathSet::new();
        // VP 1: 1 (provider of 2) → 2 → 3 puts 3 into 2's PPDC.
        ps.push(Asn(1), AsPath::new(vec![Asn(1), Asn(2), Asn(3)]));
        // VP 4: 4 (customer of 2) → 2 → 3 must NOT grow 2's PPDC.
        ps.push(Asn(4), AsPath::new(vec![Asn(4), Asn(2), Asn(3)]));

        let cones = ppdc_cones(&ps, &rels);
        let cone2: BTreeSet<_> = cones[&Asn(2)].iter().copied().collect();
        assert_eq!(cone2.into_iter().collect::<Vec<_>>(), vec![Asn(2), Asn(3)]);
        // AS3 observed only at path tails still has the self cone.
        assert_eq!(cones[&Asn(3)].len(), 1);
        let sizes = ppdc_sizes(&ps, &rels);
        assert_eq!(sizes[&Asn(2)], 2);
    }

    #[test]
    fn ppdc_peer_upstream_counts() {
        let mut rels = HashMap::new();
        rels.insert(l(1, 2), Rel::P2p);
        rels.insert(l(2, 3), p2c(2));
        let mut ps = PathSet::new();
        ps.push(Asn(1), AsPath::new(vec![Asn(1), Asn(2), Asn(3)]));
        let sizes = ppdc_sizes(&ps, &rels);
        assert_eq!(sizes[&Asn(2)], 2);
    }
}
