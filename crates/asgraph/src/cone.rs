//! Customer-cone computations.
//!
//! Two variants are used by the paper:
//!
//! * the **graph customer cone** — everything reachable by following
//!   provider→customer edges from an AS (CAIDA's recursive cone), used to
//!   split ASes into Stub/Transit for §5's topological classes, and
//! * the **provider/peer observed customer cone (PPDC)** — derived from paths:
//!   an AS's cone contains every AS that appears *behind* it on a path where it
//!   was reached from a provider or peer (Luckie et al. 2013). The paper's
//!   Appendix B heatmaps (Figs. 7–8) bin transit links by PPDC size.
//!
//! Both hot kernels run over the dense core ([`crate::index::AsIndexer`] /
//! [`crate::csr::CsrGraph`]): cone sizes come from an allocation-free BFS
//! with per-worker [`ConeScratch`](crate::csr::ConeScratch) state, and PPDC
//! cones are per-AS bitsets (one `u64` word per 64 observed ASes). The
//! original BTree/hash implementations live on in [`baseline`] so the memory
//! benchmark and the equivalence proptests can compare against them.

use crate::asn::Asn;
use crate::csr::{ConeScratch, CsrGraph};
use crate::graph::AsGraph;
use crate::index::AsIndexer;
use crate::link::Link;
use crate::paths::PathSet;
use crate::rel::Rel;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Computes the full customer cone of `asn` over `graph` (self included).
///
/// This is the readable reference implementation; for whole-graph cone sizes
/// use [`customer_cone_sizes`], which runs the dense CSR kernel instead.
#[must_use]
pub fn customer_cone(graph: &AsGraph, asn: Asn) -> BTreeSet<Asn> {
    let mut cone = BTreeSet::new();
    let mut queue = VecDeque::new();
    cone.insert(asn);
    queue.push_back(asn);
    while let Some(current) = queue.pop_front() {
        for customer in graph.customers(current) {
            if cone.insert(customer) {
                queue.push_back(customer);
            }
        }
    }
    cone
}

/// Per-AS cone sizes in dense form: a `Vec<usize>` indexed by the dense id
/// of an [`AsIndexer`]. Iteration is always in ascending ASN order, so no
/// hash-map ordering can leak into downstream output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConeSizes {
    pub(crate) indexer: AsIndexer,
    pub(crate) sizes: Vec<usize>,
}

impl ConeSizes {
    /// Sizes over no ASes (used as the stand-in for unknown scenarios).
    #[must_use]
    pub fn empty() -> Self {
        ConeSizes::default()
    }

    /// Builds from an indexer and its id-aligned size vector.
    ///
    /// # Panics
    /// If `sizes.len() != indexer.len()`.
    #[must_use]
    pub fn from_parts(indexer: AsIndexer, sizes: Vec<usize>) -> Self {
        assert_eq!(
            indexer.len(),
            sizes.len(),
            "ConeSizes requires one size per interned AS"
        );
        ConeSizes { indexer, sizes }
    }

    /// The indexer the sizes are aligned to.
    #[must_use]
    pub fn indexer(&self) -> &AsIndexer {
        &self.indexer
    }

    /// The cone size of `asn`, or `None` if it was not observed.
    #[must_use]
    pub fn get(&self, asn: Asn) -> Option<usize> {
        self.indexer.id(asn).map(|id| self.sizes[id as usize])
    }

    /// The cone size behind a dense id.
    ///
    /// # Panics
    /// If `id` is out of range for the indexer.
    #[must_use]
    pub fn by_id(&self, id: u32) -> usize {
        self.sizes[id as usize]
    }

    /// Number of ASes with a recorded size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` if no sizes are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Iterates `(asn, size)` pairs in ascending ASN order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, usize)> + '_ {
        self.indexer.iter().zip(self.sizes.iter().copied())
    }
}

/// Customer-cone sizes for every AS in the graph (self included).
///
/// Builds the [`CsrGraph`] mirror once and fans the per-AS BFS walks out
/// over the work-stealing pool with one reusable
/// [`ConeScratch`](crate::csr::ConeScratch) per worker, so the steady state
/// allocates nothing. Results are identical at any thread count.
///
/// **Deprecated for analysis code** (deepcheck L012): every call rebuilds
/// the CSR mirror from scratch. Pipeline code must share the scenario
/// snapshot's CSR via `Scenario::cone_sizes_arc` or call
/// [`customer_cone_sizes_csr`] on a prebuilt graph.
#[must_use]
pub fn customer_cone_sizes(graph: &AsGraph) -> ConeSizes {
    customer_cone_sizes_csr(&CsrGraph::build(graph))
}

/// [`customer_cone_sizes`] for a prebuilt [`CsrGraph`].
#[must_use]
pub fn customer_cone_sizes_csr(csr: &CsrGraph) -> ConeSizes {
    let n = csr.node_count();
    let sizes = breval_par::parallel_map_init(n, ConeScratch::new, |scratch, i| {
        csr.customer_cone_size(i as u32, scratch)
    });
    breval_obs::counter("cone_sizes_computed", n as u64);
    ConeSizes::from_parts(csr.indexer().clone(), sizes)
}

/// Provider/peer observed customer cones as dense bitsets: one lazily
/// allocated row of `u64` words per AS that was actually reached from a
/// provider or peer. ASes that never were still own the implicit self-cone
/// `{asn}` (size 1) without allocating a row.
#[derive(Debug, Clone, Default)]
pub struct PpdcCones {
    pub(crate) indexer: AsIndexer,
    /// One bit per observed AS; `None` means the implicit self-only cone.
    pub(crate) rows: Vec<Option<Box<[u64]>>>,
}

impl PpdcCones {
    /// The indexer over all path-observed ASes.
    #[must_use]
    pub fn indexer(&self) -> &AsIndexer {
        &self.indexer
    }

    /// Cone size behind a dense id (popcount of the row; 1 without a row).
    ///
    /// # Panics
    /// If `id` is out of range for the indexer.
    #[must_use]
    pub fn size_by_id(&self, id: u32) -> usize {
        self.rows[id as usize]
            .as_ref()
            .map_or(1, |row| row.iter().map(|w| w.count_ones() as usize).sum())
    }

    /// The cone size of `asn`, or `None` if it was never observed on a path.
    #[must_use]
    pub fn size(&self, asn: Asn) -> Option<usize> {
        self.indexer.id(asn).map(|id| self.size_by_id(id))
    }

    /// Whether `member` is in the PPDC cone of `asn`, or `None` if `asn`
    /// itself was never observed on a path. An allocation-free bit probe
    /// (rows carry the self bit; a rowless AS owns the implicit `{asn}`
    /// cone), safe on the lock-free query path.
    #[must_use]
    pub fn contains(&self, asn: Asn, member: Asn) -> Option<bool> {
        let id = self.indexer.id(asn)?;
        let row = self.rows.get(id as usize)?;
        Some(match (row, self.indexer.id(member)) {
            (None, _) => member == asn,
            (Some(row), Some(m)) => row
                .get(m as usize / 64)
                .is_some_and(|word| word & (1u64 << (m % 64)) != 0),
            (Some(_), None) => false,
        })
    }

    /// The cone members of `asn` (self included), or `None` if unobserved.
    #[must_use]
    pub fn members(&self, asn: Asn) -> Option<BTreeSet<Asn>> {
        let id = self.indexer.id(asn)?;
        Some(match &self.rows[id as usize] {
            None => BTreeSet::from([asn]),
            Some(row) => {
                let mut out = BTreeSet::new();
                for (word_idx, &word) in row.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let bit = bits.trailing_zeros();
                        out.insert(self.indexer.asn((word_idx * 64) as u32 + bit));
                        bits &= bits - 1;
                    }
                }
                out
            }
        })
    }

    /// Collapses the cones into their sizes (popcount per row).
    #[must_use]
    pub fn sizes(&self) -> ConeSizes {
        let sizes = (0..self.rows.len() as u32)
            .map(|id| self.size_by_id(id))
            .collect();
        ConeSizes::from_parts(self.indexer.clone(), sizes)
    }
}

/// Computes the provider/peer observed customer cones (PPDC) from observed
/// paths and a relationship labelling.
///
/// For each path `… u x d1 d2 …` where `u` is a provider or peer of `x`
/// according to `rels`, every `di` is placed into `x`'s cone. The AS itself is
/// always a member of its own cone.
#[must_use]
pub fn ppdc_cones(paths: &PathSet, rels: &BTreeMap<Link, Rel>) -> PpdcCones {
    // Intern every AS observed on a multi-hop compressed path — exactly the
    // key set of `PathStats::ases` (only `windows(2)` contribute degree),
    // derived here without building the full path statistics. One compression
    // buffer is reused across all paths, so the whole build allocates the
    // indexer, the row table, and one bitset row per provider/peer-reached
    // AS — nothing per path.
    let mut buf: Vec<Asn> = Vec::new();
    let mut observed: Vec<Asn> = Vec::new();
    for op in paths.paths() {
        compress_into(op.path.hops(), &mut buf);
        if buf.len() >= 2 {
            observed.extend_from_slice(&buf);
        }
    }
    let indexer = AsIndexer::from_unsorted(observed);
    let n = indexer.len();
    let words = n.div_ceil(64);
    let mut rows: Vec<Option<Box<[u64]>>> = vec![None; n];
    for op in paths.paths() {
        compress_into(op.path.hops(), &mut buf);
        let c = buf.as_slice();
        for i in 1..c.len() {
            let upstream = c[i - 1];
            let x = c[i];
            let Some(link) = Link::new(upstream, x) else {
                continue;
            };
            let from_provider_or_peer = match rels.get(&link) {
                Some(Rel::P2p) => true,
                Some(Rel::P2c { provider }) => *provider == upstream,
                _ => false,
            };
            if from_provider_or_peer {
                let x_id = indexer.id(x).expect("path hop is an observed AS");
                let row = rows[x_id as usize].get_or_insert_with(|| {
                    let mut fresh = vec![0u64; words].into_boxed_slice();
                    // Self-membership, matching the `or_default().insert(asn)`
                    // of the hash-based baseline.
                    fresh[x_id as usize / 64] |= 1u64 << (x_id % 64);
                    fresh
                });
                for &d in &c[i + 1..] {
                    let d_id = indexer.id(d).expect("path hop is an observed AS");
                    row[d_id as usize / 64] |= 1u64 << (d_id % 64);
                }
            }
        }
    }
    PpdcCones { indexer, rows }
}

/// Writes the prepend-compressed form of `hops` into `buf` (cleared first),
/// reusing its capacity across calls.
fn compress_into(hops: &[Asn], buf: &mut Vec<Asn>) {
    buf.clear();
    for &hop in hops {
        if buf.last() != Some(&hop) {
            buf.push(hop);
        }
    }
}

/// PPDC cone *sizes* (see [`ppdc_cones`]), in dense ASN-ordered form.
#[must_use]
pub fn ppdc_sizes(paths: &PathSet, rels: &BTreeMap<Link, Rel>) -> ConeSizes {
    let sizes = ppdc_cones(paths, rels).sizes();
    breval_obs::counter("ppdc_sizes_computed", sizes.len() as u64);
    sizes
}

/// BTree/hash reference implementations of the cone kernels, kept callable
/// so the memory benchmark (`BENCH_mem.json`) and the CSR equivalence
/// proptests can measure and verify the dense kernels against them.
pub mod baseline {
    use super::*;
    use std::collections::{HashMap, HashSet};

    /// [`customer_cone_sizes`](super::customer_cone_sizes) as shipped before
    /// the dense core: one fresh `BTreeSet` BFS per AS.
    #[must_use]
    pub fn customer_cone_sizes_btree(graph: &AsGraph) -> HashMap<Asn, usize> {
        let ases: Vec<Asn> = graph.ases().collect();
        let sizes: Vec<usize> =
            breval_par::parallel_map(ases.len(), |i| customer_cone(graph, ases[i]).len());
        ases.into_iter().zip(sizes).collect()
    }

    /// [`ppdc_cones`](super::ppdc_cones) as shipped before the dense core:
    /// per-AS `HashSet` cones in a `HashMap`.
    #[must_use]
    pub fn ppdc_cones_hash(
        paths: &PathSet,
        rels: &BTreeMap<Link, Rel>,
    ) -> HashMap<Asn, HashSet<Asn>> {
        let mut cones: HashMap<Asn, HashSet<Asn>> = HashMap::new();
        for op in paths.paths() {
            let c = op.path.compressed();
            for i in 1..c.len() {
                let upstream = c[i - 1];
                let x = c[i];
                let Some(link) = Link::new(upstream, x) else {
                    continue;
                };
                let from_provider_or_peer = match rels.get(&link) {
                    Some(Rel::P2p) => true,
                    Some(Rel::P2c { provider }) => *provider == upstream,
                    _ => false,
                };
                if from_provider_or_peer {
                    let cone = cones.entry(x).or_default();
                    for &d in &c[i + 1..] {
                        cone.insert(d);
                    }
                }
            }
        }
        // Every observed AS is in its own cone.
        let stats = paths.stats();
        for asn in stats.ases() {
            cones.entry(asn).or_default().insert(asn);
        }
        cones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::AsPath;

    fn l(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).unwrap()
    }

    fn p2c(provider: u32) -> Rel {
        Rel::P2c {
            provider: Asn(provider),
        }
    }

    #[test]
    fn cone_follows_customers_transitively() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).unwrap();
        g.add_rel(l(2, 3), p2c(2)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(1, 5), Rel::P2p).unwrap(); // peers do not extend the cone

        let cone = customer_cone(&g, Asn(1));
        assert_eq!(
            cone.into_iter().collect::<Vec<_>>(),
            vec![Asn(1), Asn(2), Asn(3), Asn(4)]
        );
        assert_eq!(customer_cone(&g, Asn(3)).len(), 1);
        let sizes = customer_cone_sizes(&g);
        assert_eq!(sizes.get(Asn(1)), Some(4));
        assert_eq!(sizes.get(Asn(2)), Some(3));
        assert_eq!(sizes.get(Asn(5)), Some(1));
        assert_eq!(sizes.get(Asn(99)), None);
    }

    #[test]
    fn cone_handles_multihoming_without_double_count() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).unwrap();
        g.add_rel(l(1, 3), p2c(1)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(3, 4), p2c(3)).unwrap(); // 4 multihomes to 2 and 3
        assert_eq!(customer_cone(&g, Asn(1)).len(), 4);
    }

    #[test]
    fn cone_sizes_iterate_in_ascending_asn_order() {
        // Regression for the old HashMap return type: iteration order must be
        // the ASN order, never a hash order.
        let mut g = AsGraph::new();
        g.add_rel(l(30, 2), p2c(30)).unwrap();
        g.add_rel(l(2, 17), p2c(2)).unwrap();
        g.add_rel(l(9, 17), Rel::P2p).unwrap();
        let sizes = customer_cone_sizes(&g);
        let order: Vec<Asn> = sizes.iter().map(|(a, _)| a).collect();
        assert_eq!(order, vec![Asn(2), Asn(9), Asn(17), Asn(30)]);
        let as_map: Vec<(Asn, usize)> = sizes.iter().collect();
        assert_eq!(
            as_map,
            vec![(Asn(2), 2), (Asn(9), 1), (Asn(17), 1), (Asn(30), 3)]
        );
    }

    #[test]
    fn dense_cone_sizes_match_btree_baseline() {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).unwrap();
        g.add_rel(l(2, 3), p2c(2)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(4, 5), p2c(4)).unwrap();
        g.add_rel(l(1, 6), Rel::P2p).unwrap();
        let dense = customer_cone_sizes(&g);
        let reference = baseline::customer_cone_sizes_btree(&g);
        assert_eq!(dense.len(), reference.len());
        for (asn, size) in dense.iter() {
            assert_eq!(reference.get(&asn), Some(&size));
        }
    }

    #[test]
    fn ppdc_counts_only_provider_or_peer_upstream() {
        let mut rels = BTreeMap::new();
        rels.insert(l(1, 2), p2c(1)); // 1 provider of 2
        rels.insert(l(2, 3), p2c(2)); // 2 provider of 3
        rels.insert(l(4, 2), p2c(2)); // 2 provider of 4 → upstream 4→2 is customer side

        let mut ps = PathSet::new();
        // VP 1: 1 (provider of 2) → 2 → 3 puts 3 into 2's PPDC.
        ps.push(Asn(1), AsPath::new(vec![Asn(1), Asn(2), Asn(3)]));
        // VP 4: 4 (customer of 2) → 2 → 3 must NOT grow 2's PPDC.
        ps.push(Asn(4), AsPath::new(vec![Asn(4), Asn(2), Asn(3)]));

        let cones = ppdc_cones(&ps, &rels);
        let cone2 = cones.members(Asn(2)).unwrap();
        assert_eq!(cone2.into_iter().collect::<Vec<_>>(), vec![Asn(2), Asn(3)]);
        // AS3 observed only at path tails still has the self cone.
        assert_eq!(cones.members(Asn(3)).unwrap().len(), 1);
        let sizes = ppdc_sizes(&ps, &rels);
        assert_eq!(sizes.get(Asn(2)), Some(2));
    }

    #[test]
    fn ppdc_peer_upstream_counts() {
        let mut rels = BTreeMap::new();
        rels.insert(l(1, 2), Rel::P2p);
        rels.insert(l(2, 3), p2c(2));
        let mut ps = PathSet::new();
        ps.push(Asn(1), AsPath::new(vec![Asn(1), Asn(2), Asn(3)]));
        let sizes = ppdc_sizes(&ps, &rels);
        assert_eq!(sizes.get(Asn(2)), Some(2));
    }

    #[test]
    fn ppdc_bitsets_match_hash_baseline() {
        let mut rels = BTreeMap::new();
        rels.insert(l(1, 2), p2c(1));
        rels.insert(l(2, 3), p2c(2));
        rels.insert(l(3, 4), p2c(3));
        rels.insert(l(5, 2), Rel::P2p);
        let mut ps = PathSet::new();
        ps.push(Asn(1), AsPath::new(vec![Asn(1), Asn(2), Asn(3), Asn(4)]));
        ps.push(Asn(5), AsPath::new(vec![Asn(5), Asn(2), Asn(3)]));
        let dense = ppdc_cones(&ps, &rels);
        let reference = baseline::ppdc_cones_hash(&ps, &rels);
        assert_eq!(dense.indexer().len(), reference.len());
        for (&asn, members) in &reference {
            let expect: BTreeSet<Asn> = members.iter().copied().collect();
            assert_eq!(dense.members(asn), Some(expect), "cone of {asn:?}");
        }
    }
}
