//! # asgraph — AS-level graph substrate
//!
//! Core data model shared by the whole `breval` workspace:
//!
//! * [`Asn`] — autonomous-system numbers, including the IANA-reserved ranges and
//!   the `AS_TRANS` placeholder relevant to validation-label cleaning (§4.2 of the
//!   paper).
//! * [`Link`] — an undirected, normalised AS adjacency.
//! * [`Rel`] / [`GtRel`] — simple and ground-truth (complex) business relationships.
//! * [`AsGraph`] — a relationship-labelled adjacency structure with degree,
//!   provider/customer/peer views and customer-cone computation.
//! * [`AsPath`] / [`PathSet`] — observed BGP AS paths with the derived statistics
//!   (node degree, transit degree, vantage-point visibility) that the inference
//!   algorithms in `asinfer` consume.
//! * [`clique`] — Tier-1 clique inference over transit-degree rankings, as used by
//!   the ASRank pipeline.
//! * [`AsIndexer`] / [`CsrGraph`] — the dense core: sorted-ASN ↔ `u32` id
//!   interning plus role-segmented CSR adjacency, so the hot analysis kernels
//!   (cone BFS, PPDC bitsets, class partition) run over flat arrays and only
//!   convert back to [`Asn`] at serialization boundaries.
//!
//! The crate is dependency-light (only `serde`) and purely computational.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod clique;
pub mod cone;
pub mod csr;
pub mod error;
pub mod graph;
pub mod index;
pub mod io;
pub mod link;
pub mod paths;
pub mod rel;
pub mod valley;

pub use asn::Asn;
pub use cone::{ConeSizes, PpdcCones, PpdcStorageStats};
pub use csr::{ConeScratch, CsrGraph};
pub use error::GraphError;
pub use graph::{AsGraph, NeighborRole};
pub use index::AsIndexer;
pub use link::Link;
pub use paths::{AsPath, ObservedPath, PathSet, PathStats};
pub use rel::{GtRel, Rel, RelClass};
pub use valley::{check_valley_free, ValleyViolation};
