//! Safe length-prefixed little-endian binary codec for the dense core.
//!
//! The snapshot persistence layer (see `core::snapshot`) serializes the
//! dense structures — [`AsIndexer`], [`CsrGraph`], [`ConeSizes`],
//! [`PpdcCones`] — as flat typed arrays: every slice is written as a `u64`
//! element count followed by the elements as little-endian `u32`/`u64`
//! bytes. This is the safe analogue of mmap'd typed-array formats: no
//! `unsafe`, no transmutes — the workspace stays `forbid(unsafe_code)` —
//! yet loads are a handful of bulk `Vec` fills instead of a graph rebuild.
//!
//! Reading is defensive end to end: every length prefix is validated
//! against the bytes actually remaining *before* any allocation happens
//! (a corrupt length can never trigger an OOM-sized reservation), every
//! structural invariant (sorted indexers, monotone CSR offsets, in-range
//! targets) is re-checked on load, and every failure surfaces as an
//! [`IoError`] — never a panic.

use crate::asn::Asn;
use crate::cone::{sparse_cutoff, ConeSizes, PpdcCones, PpdcRow};
use crate::csr::{Csr, CsrGraph};
use crate::index::AsIndexer;
use std::fmt;

/// Why a snapshot byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The stream ended before a fixed-width field could be read.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The leading magic bytes did not match.
    BadMagic,
    /// The schema version is not one this build can decode.
    BadVersion {
        /// The version found in the stream.
        found: u32,
    },
    /// A slice length prefix asks for more bytes than the stream holds.
    /// Raised *before* any allocation, so corrupt prefixes cannot OOM.
    OversizedLength {
        /// Byte offset of the length prefix.
        offset: usize,
        /// The element count the prefix claimed.
        count: u64,
        /// Bytes actually remaining after the prefix.
        remaining: usize,
    },
    /// Decoding finished but bytes were left over.
    TrailingBytes {
        /// Number of undecoded bytes at the end of the stream.
        count: usize,
    },
    /// A structural invariant failed (unsorted indexer, broken CSR
    /// offsets, out-of-range id, …).
    Invalid {
        /// Byte offset of the offending region.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Truncated {
                offset,
                needed,
                remaining,
            } => write!(
                f,
                "truncated stream at byte {offset}: needed {needed} bytes, {remaining} remain"
            ),
            IoError::BadMagic => write!(f, "bad magic: not a breval snapshot"),
            IoError::BadVersion { found } => {
                write!(f, "unsupported snapshot schema version {found}")
            }
            IoError::OversizedLength {
                offset,
                count,
                remaining,
            } => write!(
                f,
                "oversized length prefix at byte {offset}: {count} elements but only {remaining} bytes remain"
            ),
            IoError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after snapshot payload")
            }
            IoError::Invalid { offset, what } => {
                write!(f, "invalid snapshot data at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for IoError {}

/// Append-only little-endian byte buffer, the writing half of the codec.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends raw bytes (used for magic headers).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one `u32`, little-endian.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends one `u64`, little-endian.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u32` slice: `u64` element count, then the elements.
    pub fn put_u32_slice(&mut self, values: &[u32]) {
        self.put_u64(values.len() as u64);
        self.buf.reserve(values.len() * 4);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a `u64` slice: `u64` element count, then the elements.
    pub fn put_u64_slice(&mut self, values: &[u64]) {
        self.put_u64(values.len() as u64);
        self.buf.reserve(values.len() * 8);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a UTF-8 string: `u64` byte count, then the bytes.
    pub fn put_str(&mut self, value: &str) {
        self.put_u64(value.len() as u64);
        self.buf.extend_from_slice(value.as_bytes());
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing was written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the accumulated bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Validating cursor over a byte stream, the reading half of the codec.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Current byte offset.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        match self.bytes.get(self.pos..self.pos + n) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(IoError::Truncated {
                offset: self.pos,
                needed: n,
                remaining: self.remaining(),
            }),
        }
    }

    /// Consumes `expected.len()` bytes and checks they match (magic check).
    pub fn expect_bytes(&mut self, expected: &[u8]) -> Result<(), IoError> {
        let got = self.take(expected.len()).map_err(|_| IoError::BadMagic)?;
        if got == expected {
            Ok(())
        } else {
            Err(IoError::BadMagic)
        }
    }

    /// Reads one little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, IoError> {
        let b = self.take(4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(b);
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads one little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, IoError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a length prefix for `width`-byte elements, validating it
    /// against the remaining bytes *before* the caller allocates.
    fn take_len(&mut self, width: usize) -> Result<usize, IoError> {
        let at = self.pos;
        let count = self.take_u64()?;
        let fits = count
            .checked_mul(width as u64)
            .is_some_and(|total| total <= self.remaining() as u64);
        if !fits {
            return Err(IoError::OversizedLength {
                offset: at,
                count,
                remaining: self.remaining(),
            });
        }
        Ok(count as usize)
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn take_u32_slice(&mut self) -> Result<Vec<u32>, IoError> {
        let count = self.take_len(4)?;
        let bytes = self.take(count * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| {
                let mut arr = [0u8; 4];
                arr.copy_from_slice(c);
                u32::from_le_bytes(arr)
            })
            .collect())
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn take_u64_slice(&mut self) -> Result<Vec<u64>, IoError> {
        let count = self.take_len(8)?;
        let bytes = self.take(count * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(c);
                u64::from_le_bytes(arr)
            })
            .collect())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, IoError> {
        let at = self.pos;
        let count = self.take_len(1)?;
        let bytes = self.take(count)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(IoError::Invalid {
                offset: at,
                what: "string payload is not valid UTF-8",
            }),
        }
    }

    /// Asserts the stream is fully consumed.
    pub fn finish(self) -> Result<(), IoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(IoError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// Writes an [`AsIndexer`] as its strictly ascending ASN list.
pub fn write_indexer(w: &mut ByteWriter, indexer: &AsIndexer) {
    let asns: Vec<u32> = indexer.iter().map(|a| a.0).collect();
    w.put_u32_slice(&asns);
}

/// Reads an [`AsIndexer`], validating strict ASN ascent (the invariant
/// `from_sorted` only debug-asserts).
pub fn read_indexer(r: &mut ByteReader) -> Result<AsIndexer, IoError> {
    let at = r.offset();
    let raw = r.take_u32_slice()?;
    if !raw.windows(2).all(|w| w[0] < w[1]) {
        return Err(IoError::Invalid {
            offset: at,
            what: "indexer ASNs are not strictly ascending",
        });
    }
    Ok(AsIndexer::from_sorted(raw.into_iter().map(Asn).collect()))
}

/// Writes a [`CsrGraph`]: its indexer, then per role (providers,
/// customers, peers, siblings) the offsets and targets arrays.
pub fn write_csr_graph(w: &mut ByteWriter, graph: &CsrGraph) {
    write_indexer(w, graph.indexer());
    for csr in [
        &graph.providers,
        &graph.customers,
        &graph.peers,
        &graph.siblings,
    ] {
        w.put_u32_slice(&csr.offsets);
        w.put_u32_slice(&csr.targets);
    }
}

/// Reads one role's CSR arrays and re-validates the CSR invariants:
/// `n + 1` monotone offsets starting at 0 and ending at `targets.len()`,
/// every target a valid node id.
fn read_csr(r: &mut ByteReader, n: usize) -> Result<Csr, IoError> {
    let at = r.offset();
    let offsets = r.take_u32_slice()?;
    let targets = r.take_u32_slice()?;
    // A default-constructed (node-less) CSR has no offsets at all; it is
    // valid because no id can ever index it.
    let empty_ok = n == 0 && offsets.is_empty() && targets.is_empty();
    let shape_ok = empty_ok
        || (offsets.len() == n + 1
            && offsets.first() == Some(&0)
            && offsets.windows(2).all(|w| w[0] <= w[1])
            && offsets.last().copied() == u32::try_from(targets.len()).ok());
    if !shape_ok {
        return Err(IoError::Invalid {
            offset: at,
            what: "CSR offsets are not a monotone prefix sum over the targets",
        });
    }
    if !targets.iter().all(|&t| (t as usize) < n) {
        return Err(IoError::Invalid {
            offset: at,
            what: "CSR target id out of range for the indexer",
        });
    }
    Ok(Csr { offsets, targets })
}

/// Reads a [`CsrGraph`] written by [`write_csr_graph`].
pub fn read_csr_graph(r: &mut ByteReader) -> Result<CsrGraph, IoError> {
    let indexer = read_indexer(r)?;
    let n = indexer.len();
    let providers = read_csr(r, n)?;
    let customers = read_csr(r, n)?;
    let peers = read_csr(r, n)?;
    let siblings = read_csr(r, n)?;
    Ok(CsrGraph {
        indexer,
        providers,
        customers,
        peers,
        siblings,
    })
}

/// Writes a [`ConeSizes`]: its indexer plus the id-aligned sizes as `u64`.
pub fn write_cone_sizes(w: &mut ByteWriter, cones: &ConeSizes) {
    write_indexer(w, cones.indexer());
    let sizes: Vec<u64> = cones.iter().map(|(_, s)| s as u64).collect();
    w.put_u64_slice(&sizes);
}

/// Reads a [`ConeSizes`] written by [`write_cone_sizes`].
pub fn read_cone_sizes(r: &mut ByteReader) -> Result<ConeSizes, IoError> {
    let indexer = read_indexer(r)?;
    let at = r.offset();
    let raw = r.take_u64_slice()?;
    if raw.len() != indexer.len() {
        return Err(IoError::Invalid {
            offset: at,
            what: "cone size count does not match the indexer",
        });
    }
    let mut sizes = Vec::with_capacity(raw.len());
    for v in raw {
        match usize::try_from(v) {
            Ok(s) => sizes.push(s),
            Err(_) => {
                return Err(IoError::Invalid {
                    offset: at,
                    what: "cone size does not fit in usize",
                })
            }
        }
    }
    Ok(ConeSizes { indexer, sizes })
}

/// Writes a [`PpdcCones`] in the hybrid layout: its indexer, the sparse
/// rows (ascending owner ids, per-row member counts, all sorted members
/// concatenated), then the dense rows (ascending owner ids, fixed-width
/// bitset words concatenated). ASes without a row (implicit self-only
/// cones) cost zero bytes, and a mostly-sparse cone table serializes in
/// `O(total members)` bytes instead of `O(rows · n/8)`.
pub fn write_ppdc_cones(w: &mut ByteWriter, cones: &PpdcCones) {
    write_indexer(w, cones.indexer());
    let mut sparse_ids: Vec<u32> = Vec::new();
    let mut sparse_lens: Vec<u32> = Vec::new();
    let mut sparse_members: Vec<u32> = Vec::new();
    let mut dense_ids: Vec<u32> = Vec::new();
    let mut dense_words: Vec<u64> = Vec::new();
    for (id, row) in cones.rows.iter().enumerate() {
        match row {
            None => {}
            Some(PpdcRow::Sparse(ids)) => {
                sparse_ids.push(id as u32);
                sparse_lens.push(ids.len() as u32);
                sparse_members.extend_from_slice(ids);
            }
            Some(PpdcRow::Dense(words)) => {
                dense_ids.push(id as u32);
                dense_words.extend_from_slice(words);
            }
        }
    }
    w.put_u32_slice(&sparse_ids);
    w.put_u32_slice(&sparse_lens);
    w.put_u32_slice(&sparse_members);
    w.put_u32_slice(&dense_ids);
    w.put_u64_slice(&dense_words);
}

/// Reads a [`PpdcCones`] written by [`write_ppdc_cones`], validating row
/// ids, lengths, member ordering, the density split (sparse rows below the
/// cutoff, dense rows at or above it — so equal cones have exactly one
/// loadable encoding), and that no bit beyond the indexed range is set.
pub fn read_ppdc_cones(r: &mut ByteReader) -> Result<PpdcCones, IoError> {
    let indexer = read_indexer(r)?;
    let n = indexer.len();
    let words_per_row = n.div_ceil(64);
    let cutoff = sparse_cutoff(n);

    let at = r.offset();
    let sparse_ids = r.take_u32_slice()?;
    let ids_ok = sparse_ids.windows(2).all(|w| w[0] < w[1])
        && sparse_ids.iter().all(|&id| (id as usize) < n);
    if !ids_ok {
        return Err(IoError::Invalid {
            offset: at,
            what: "sparse PPDC row ids are not ascending in-range node ids",
        });
    }
    let at = r.offset();
    let sparse_lens = r.take_u32_slice()?;
    if sparse_lens.len() != sparse_ids.len() {
        return Err(IoError::Invalid {
            offset: at,
            what: "sparse PPDC length count does not match row count",
        });
    }
    // A sparse row always holds at least its owner and, by the density
    // rule, strictly fewer members than the cutoff.
    if !sparse_lens
        .iter()
        .all(|&len| len >= 1 && (len as usize) < cutoff)
    {
        return Err(IoError::Invalid {
            offset: at,
            what: "sparse PPDC row length is outside 1..cutoff",
        });
    }
    let at = r.offset();
    let sparse_members = r.take_u32_slice()?;
    let total: u64 = sparse_lens.iter().map(|&len| u64::from(len)).sum();
    if total != sparse_members.len() as u64 {
        return Err(IoError::Invalid {
            offset: at,
            what: "sparse PPDC member count does not match the row lengths",
        });
    }
    let mut rows: Vec<Option<PpdcRow>> = vec![None; n];
    let mut off = 0usize;
    for (&id, &len) in sparse_ids.iter().zip(&sparse_lens) {
        let members = &sparse_members[off..off + len as usize];
        off += len as usize;
        let members_ok =
            members.windows(2).all(|w| w[0] < w[1]) && members.iter().all(|&m| (m as usize) < n);
        if !members_ok {
            return Err(IoError::Invalid {
                offset: at,
                what: "sparse PPDC row members are not ascending in-range ids",
            });
        }
        rows[id as usize] = Some(PpdcRow::Sparse(members.to_vec().into_boxed_slice()));
    }

    let at = r.offset();
    let dense_ids = r.take_u32_slice()?;
    let ids_ok =
        dense_ids.windows(2).all(|w| w[0] < w[1]) && dense_ids.iter().all(|&id| (id as usize) < n);
    if !ids_ok {
        return Err(IoError::Invalid {
            offset: at,
            what: "dense PPDC row ids are not ascending in-range node ids",
        });
    }
    if dense_ids.iter().any(|&id| rows[id as usize].is_some()) {
        return Err(IoError::Invalid {
            offset: at,
            what: "PPDC row is both sparse and dense",
        });
    }
    let at = r.offset();
    let dense_words = r.take_u64_slice()?;
    if dense_words.len() != dense_ids.len() * words_per_row {
        return Err(IoError::Invalid {
            offset: at,
            what: "dense PPDC word count does not match row count",
        });
    }
    // Bits addressing ids >= n would silently change popcounts; reject them
    // so every loadable stream re-encodes byte-identically.
    let tail_bits = words_per_row * 64 - n;
    if words_per_row > 0 && tail_bits > 0 {
        let mask = !0u64 << (64 - tail_bits as u32);
        let tails_clean = dense_words
            .chunks_exact(words_per_row)
            .all(|row| row.last().is_none_or(|&last| last & mask == 0));
        if !tails_clean {
            return Err(IoError::Invalid {
                offset: at,
                what: "dense PPDC row sets bits beyond the indexed range",
            });
        }
    }
    if words_per_row > 0 {
        for (slot, row) in dense_ids
            .iter()
            .zip(dense_words.chunks_exact(words_per_row))
        {
            let members: usize = row.iter().map(|w| w.count_ones() as usize).sum();
            if members < cutoff {
                return Err(IoError::Invalid {
                    offset: at,
                    what: "dense PPDC row is below the sparse cutoff",
                });
            }
            rows[*slot as usize] = Some(PpdcRow::Dense(row.to_vec().into_boxed_slice()));
        }
    }
    Ok(PpdcCones { indexer, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"MAGIC!!!");
        w.put_u32(7);
        w.put_u64(1 << 40);
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u64_slice(&[u64::MAX]);
        w.put_str("asrank");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.expect_bytes(b"MAGIC!!!").unwrap();
        assert_eq!(r.take_u32().unwrap(), 7);
        assert_eq!(r.take_u64().unwrap(), 1 << 40);
        assert_eq!(r.take_u32_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.take_u64_slice().unwrap(), vec![u64::MAX]);
        assert_eq!(r.take_str().unwrap(), "asrank");
        r.finish().unwrap();
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        match r.take_u32_slice() {
            Err(IoError::OversizedLength { count, .. }) => assert_eq!(count, u64::MAX),
            other => panic!("expected OversizedLength, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_reported() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.take_u32(), Err(IoError::Truncated { .. })));
        let bytes = [0u8; 12];
        let mut r = ByteReader::new(&bytes);
        r.take_u32().unwrap();
        assert!(matches!(
            r.finish(),
            Err(IoError::TrailingBytes { count: 8 })
        ));
    }

    #[test]
    fn bad_magic_is_reported() {
        let mut r = ByteReader::new(b"NOTMAGIC");
        assert_eq!(r.expect_bytes(b"BREVSNAP"), Err(IoError::BadMagic));
    }

    #[test]
    fn indexer_must_be_strictly_ascending() {
        let mut w = ByteWriter::new();
        w.put_u32_slice(&[5, 5, 9]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(read_indexer(&mut r), Err(IoError::Invalid { .. })));
    }

    fn ppdc_stream(
        n: u32,
        sparse_ids: &[u32],
        sparse_lens: &[u32],
        sparse_members: &[u32],
        dense_ids: &[u32],
        dense_words: &[u64],
    ) -> Vec<u8> {
        let mut w = ByteWriter::new();
        write_indexer(&mut w, &AsIndexer::from_sorted((1..=n).map(Asn).collect()));
        w.put_u32_slice(sparse_ids);
        w.put_u32_slice(sparse_lens);
        w.put_u32_slice(sparse_members);
        w.put_u32_slice(dense_ids);
        w.put_u64_slice(dense_words);
        w.into_bytes()
    }

    fn ppdc_rejected(bytes: &[u8]) -> bool {
        let mut r = ByteReader::new(bytes);
        matches!(read_ppdc_cones(&mut r), Err(IoError::Invalid { .. }))
    }

    #[test]
    fn ppdc_sparse_rows_are_validated() {
        // Members out of ascending order.
        assert!(ppdc_rejected(&ppdc_stream(
            3,
            &[0],
            &[2],
            &[2, 0],
            &[],
            &[]
        )));
        // Member id beyond the indexer.
        assert!(ppdc_rejected(&ppdc_stream(
            3,
            &[0],
            &[2],
            &[0, 7],
            &[],
            &[]
        )));
        // Empty row (a row always holds at least its owner).
        assert!(ppdc_rejected(&ppdc_stream(3, &[0], &[0], &[], &[], &[])));
        // Row at the cutoff must have been encoded dense instead.
        assert!(ppdc_rejected(&ppdc_stream(
            9,
            &[0],
            &[8],
            &[0, 1, 2, 3, 4, 5, 6, 7],
            &[],
            &[],
        )));
        // Length table disagrees with the member payload.
        assert!(ppdc_rejected(&ppdc_stream(3, &[0], &[2], &[0], &[], &[])));
        // A well-formed sparse row decodes.
        assert!(!ppdc_rejected(&ppdc_stream(
            3,
            &[0],
            &[2],
            &[0, 2],
            &[],
            &[]
        )));
    }

    #[test]
    fn ppdc_dense_rows_are_validated() {
        // Popcount below the cutoff: should have been sparse.
        assert!(ppdc_rejected(&ppdc_stream(9, &[], &[], &[], &[0], &[0b11])));
        // Tail bits beyond the indexed range.
        assert!(ppdc_rejected(&ppdc_stream(
            9,
            &[],
            &[],
            &[],
            &[0],
            &[0xffff_ffff_ffff_ffff],
        )));
        // Same id in both the sparse and dense tables.
        assert!(ppdc_rejected(&ppdc_stream(
            9,
            &[0],
            &[1],
            &[0],
            &[0],
            &[0b1_1111_1111],
        )));
        // A full in-range row (9 bits, at the cutoff of 8) decodes.
        assert!(!ppdc_rejected(&ppdc_stream(
            9,
            &[],
            &[],
            &[],
            &[0],
            &[0b1_1111_1111],
        )));
    }

    #[test]
    fn csr_offsets_are_validated() {
        let mut w = ByteWriter::new();
        write_indexer(&mut w, &AsIndexer::from_sorted(vec![Asn(1), Asn(2)]));
        w.put_u32_slice(&[0, 2, 1]); // non-monotone offsets
        w.put_u32_slice(&[0, 1]);
        for _ in 0..3 {
            w.put_u32_slice(&[0, 0, 0]);
            w.put_u32_slice(&[]);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            read_csr_graph(&mut r),
            Err(IoError::Invalid { .. })
        ));
    }
}
