//! Error types for graph construction and queries.

use crate::asn::Asn;
use crate::link::Link;
use std::fmt;

/// Errors raised when building or mutating an [`crate::AsGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The same link was inserted twice with conflicting relationships.
    ConflictingRelationship {
        /// The link in question.
        link: Link,
    },
    /// A P2C relationship named a provider that is not an endpoint of the link.
    ProviderNotOnLink {
        /// The link in question.
        link: Link,
        /// The offending provider ASN.
        provider: Asn,
    },
    /// A self-adjacency was passed where a link was required.
    SelfLoop {
        /// The ASN adjacent to itself.
        asn: Asn,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ConflictingRelationship { link } => {
                write!(f, "conflicting relationship labels for link {link}")
            }
            GraphError::ProviderNotOnLink { link, provider } => {
                write!(f, "provider {provider} is not an endpoint of link {link}")
            }
            GraphError::SelfLoop { asn } => write!(f, "self-loop on {asn} is not a link"),
        }
    }
}

impl std::error::Error for GraphError {}
