//! Undirected, normalised AS adjacencies.

use crate::asn::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An undirected link between two distinct ASes, stored in normalised order
/// (`a < b`). All link-keyed maps in the workspace use this type so that the
/// same adjacency observed in either direction collapses to one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Link {
    a: Asn,
    b: Asn,
}

impl Link {
    /// Builds a normalised link. Returns `None` for a self-adjacency (which can
    /// appear in raw AS paths through prepending but is never a link).
    #[must_use]
    pub fn new(x: Asn, y: Asn) -> Option<Self> {
        if x == y {
            None
        } else if x < y {
            Some(Link { a: x, b: y })
        } else {
            Some(Link { a: y, b: x })
        }
    }

    /// The lexicographically smaller endpoint.
    #[must_use]
    pub fn a(&self) -> Asn {
        self.a
    }

    /// The lexicographically larger endpoint.
    #[must_use]
    pub fn b(&self) -> Asn {
        self.b
    }

    /// Both endpoints in normalised order.
    #[must_use]
    pub fn endpoints(&self) -> (Asn, Asn) {
        (self.a, self.b)
    }

    /// `true` if `asn` is one of the endpoints.
    #[must_use]
    pub fn contains(&self, asn: Asn) -> bool {
        self.a == asn || self.b == asn
    }

    /// Given one endpoint, returns the other; `None` if `asn` is not incident.
    #[must_use]
    pub fn other(&self, asn: Asn) -> Option<Asn> {
        if asn == self.a {
            Some(self.b)
        } else if asn == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// `true` if either endpoint is an IANA-reserved ASN or `AS_TRANS`.
    ///
    /// §5 of the paper discards such links before class assignment.
    #[must_use]
    pub fn involves_reserved(&self) -> bool {
        self.a.is_reserved() || self.b.is_reserved()
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}–{}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_order() {
        let l1 = Link::new(Asn(10), Asn(5)).unwrap();
        let l2 = Link::new(Asn(5), Asn(10)).unwrap();
        assert_eq!(l1, l2);
        assert_eq!(l1.a(), Asn(5));
        assert_eq!(l1.b(), Asn(10));
    }

    #[test]
    fn rejects_self_loop() {
        assert!(Link::new(Asn(7), Asn(7)).is_none());
    }

    #[test]
    fn other_endpoint() {
        let l = Link::new(Asn(1), Asn(2)).unwrap();
        assert_eq!(l.other(Asn(1)), Some(Asn(2)));
        assert_eq!(l.other(Asn(2)), Some(Asn(1)));
        assert_eq!(l.other(Asn(3)), None);
        assert!(l.contains(Asn(1)) && l.contains(Asn(2)) && !l.contains(Asn(9)));
    }

    #[test]
    fn reserved_detection() {
        assert!(Link::new(Asn(64512), Asn(3356))
            .unwrap()
            .involves_reserved());
        assert!(Link::new(Asn(23456), Asn(3356))
            .unwrap()
            .involves_reserved());
        assert!(!Link::new(Asn(174), Asn(3356)).unwrap().involves_reserved());
    }
}
