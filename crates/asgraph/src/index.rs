//! Dense AS interning.
//!
//! Every hot analysis kernel (customer-cone BFS, PPDC bitsets, class
//! partition, coverage, heatmaps) works over dense `u32` ids instead of
//! pointer-chasing `BTreeMap<Asn, …>` structures. An [`AsIndexer`] is the
//! bridge: built **once** per graph (or path set), it assigns the id `i` to
//! the `i`-th smallest ASN. Ids are contiguous, so per-AS state becomes a
//! flat `Vec` indexed by id, and the sorted construction makes every
//! id-ordered iteration automatically ASN-ordered — dense kernels inherit
//! the determinism of the BTree structures they replace for free.
//!
//! `Asn` values only exist at the edges of the pipeline (parsing,
//! serialization, report rendering); see `DESIGN.md`'s "Memory layout &
//! interning" section.

use crate::asn::Asn;

/// A bijection between a fixed, sorted set of ASNs and the dense id range
/// `0..len`. Immutable once built.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsIndexer {
    /// Strictly ascending; the id of `asns[i]` is `i`.
    asns: Vec<Asn>,
}

impl AsIndexer {
    /// An indexer over no ASes.
    #[must_use]
    pub fn empty() -> Self {
        AsIndexer::default()
    }

    /// Builds from a strictly ascending ASN list (the natural output of any
    /// BTree-ordered iteration). Strictness is debug-asserted.
    #[must_use]
    pub fn from_sorted(asns: Vec<Asn>) -> Self {
        debug_assert!(
            asns.windows(2).all(|w| w[0] < w[1]),
            "AsIndexer::from_sorted requires strictly ascending ASNs"
        );
        AsIndexer { asns }
    }

    /// Builds from arbitrary ASNs (sorted and deduplicated internally).
    #[must_use]
    pub fn from_unsorted(mut asns: Vec<Asn>) -> Self {
        asns.sort_unstable();
        asns.dedup();
        AsIndexer { asns }
    }

    /// The dense id of `asn`, or `None` if it was not interned.
    #[must_use]
    pub fn id(&self, asn: Asn) -> Option<u32> {
        self.asns.binary_search(&asn).ok().map(|i| i as u32)
    }

    /// The ASN behind a dense id.
    ///
    /// # Panics
    /// If `id >= self.len()` — ids come from [`AsIndexer::id`] on the same
    /// indexer, so an out-of-range id is a logic error.
    #[must_use]
    pub fn asn(&self, id: u32) -> Asn {
        self.asns[id as usize]
    }

    /// `true` if `asn` was interned.
    #[must_use]
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns.binary_search(&asn).is_ok()
    }

    /// Number of interned ASes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// `true` if no ASes were interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Iterates the interned ASNs in id order (= ascending ASN order).
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.asns.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_sorted_input() {
        let idx = AsIndexer::from_sorted(vec![Asn(3), Asn(7), Asn(100)]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.id(Asn(3)), Some(0));
        assert_eq!(idx.id(Asn(7)), Some(1));
        assert_eq!(idx.id(Asn(100)), Some(2));
        assert_eq!(idx.id(Asn(4)), None);
        assert_eq!(idx.asn(1), Asn(7));
        assert!(idx.contains(Asn(100)) && !idx.contains(Asn(101)));
        assert_eq!(
            idx.iter().collect::<Vec<_>>(),
            vec![Asn(3), Asn(7), Asn(100)]
        );
    }

    #[test]
    fn unsorted_input_is_sorted_and_deduped() {
        let idx = AsIndexer::from_unsorted(vec![Asn(9), Asn(2), Asn(9), Asn(5)]);
        assert_eq!(idx.iter().collect::<Vec<_>>(), vec![Asn(2), Asn(5), Asn(9)]);
        assert_eq!(idx.id(Asn(9)), Some(2));
    }

    #[test]
    fn empty_indexer() {
        let idx = AsIndexer::empty();
        assert!(idx.is_empty());
        assert_eq!(idx.id(Asn(1)), None);
    }
}
