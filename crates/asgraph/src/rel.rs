//! Business-relationship labels.
//!
//! Two layers are distinguished:
//!
//! * [`Rel`] — the *simple* three-way classification (P2C / P2P / S2S) that the
//!   inference algorithms output and that validation labels are reduced to.
//! * [`GtRel`] — the *ground-truth* relationship a link actually has in a
//!   generated topology, which additionally models partial transit and per-PoP
//!   hybrid behaviour (Giotsas et al. 2014, discussed in §3.1/§4.2 of the paper).

use crate::asn::Asn;
use crate::link::Link;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple AS business relationship on a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rel {
    /// Provider-to-customer; `provider` must be one of the link endpoints.
    P2c {
        /// The endpoint acting as the transit provider.
        provider: Asn,
    },
    /// Settlement-free peering.
    P2p,
    /// Sibling — both ASes belong to the same organisation.
    S2s,
}

/// The relationship *class* irrespective of P2C orientation — the unit of the
/// paper's confusion matrices ("P2P as positive class" vs "P2C as positive
/// class").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RelClass {
    /// Provider-to-customer (either orientation).
    P2c,
    /// Settlement-free peering.
    P2p,
    /// Sibling.
    S2s,
}

impl Rel {
    /// Orientation-insensitive class of this relationship.
    #[must_use]
    pub fn class(&self) -> RelClass {
        match self {
            Rel::P2c { .. } => RelClass::P2c,
            Rel::P2p => RelClass::P2p,
            Rel::S2s => RelClass::S2s,
        }
    }

    /// The provider endpoint, for P2C relationships.
    #[must_use]
    pub fn provider(&self) -> Option<Asn> {
        match self {
            Rel::P2c { provider } => Some(*provider),
            _ => None,
        }
    }

    /// The customer endpoint of `link`, for P2C relationships.
    #[must_use]
    pub fn customer_on(&self, link: Link) -> Option<Asn> {
        self.provider().and_then(|p| link.other(p))
    }

    /// `true` if the relationship is consistent with `link` (its provider, if
    /// any, is an endpoint of `link`).
    #[must_use]
    pub fn is_valid_for(&self, link: Link) -> bool {
        match self {
            Rel::P2c { provider } => link.contains(*provider),
            _ => true,
        }
    }

    /// Two relationship labels *agree* if they have the same class and, for
    /// P2C, the same orientation.
    #[must_use]
    pub fn agrees_with(&self, other: &Rel) -> bool {
        self == other
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rel::P2c { provider } => write!(f, "p2c(provider={provider})"),
            Rel::P2p => write!(f, "p2p"),
            Rel::S2s => write!(f, "s2s"),
        }
    }
}

impl fmt::Display for RelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelClass::P2c => write!(f, "p2c"),
            RelClass::P2p => write!(f, "p2p"),
            RelClass::S2s => write!(f, "s2s"),
        }
    }
}

/// Ground-truth relationship of a link in a generated topology.
///
/// Beyond the base [`Rel`], this captures the complex behaviours that the paper
/// identifies as validation pitfalls:
///
/// * **partial transit** — the provider exports the customer's routes to its
///   own customers (and optionally peers) but not upward; publicly the link can
///   look like peering (the §6.1 Cogent mechanism), and
/// * **hybrid** — the relationship differs per interconnection PoP, producing
///   multi-label validation entries (§4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GtRel {
    /// The primary (contractual) relationship.
    pub base: Rel,
    /// `true` if a P2C relationship is scoped to partial transit: the customer's
    /// routes are exported only to the provider's customer cone, never to the
    /// provider's peers or providers.
    pub partial_transit: bool,
    /// For hybrid links: the relationship observed at a minority of PoPs.
    pub hybrid_alt: Option<Rel>,
}

impl GtRel {
    /// A plain, single-PoP relationship.
    #[must_use]
    pub fn simple(base: Rel) -> Self {
        GtRel {
            base,
            partial_transit: false,
            hybrid_alt: None,
        }
    }

    /// A partial-transit P2C relationship.
    #[must_use]
    pub fn partial(provider: Asn) -> Self {
        GtRel {
            base: Rel::P2c { provider },
            partial_transit: true,
            hybrid_alt: None,
        }
    }

    /// A hybrid relationship (`base` at most PoPs, `alt` at the rest).
    #[must_use]
    pub fn hybrid(base: Rel, alt: Rel) -> Self {
        GtRel {
            base,
            partial_transit: false,
            hybrid_alt: Some(alt),
        }
    }

    /// `true` if this link needs special validation treatment (§4.2): hybrid
    /// links produce ambiguous multi-label validation entries.
    #[must_use]
    pub fn is_complex(&self) -> bool {
        self.partial_transit || self.hybrid_alt.is_some()
    }

    /// All relationship labels an observer could legitimately record.
    #[must_use]
    pub fn observable_labels(&self) -> Vec<Rel> {
        let mut v = vec![self.base];
        if let Some(alt) = self.hybrid_alt {
            v.push(alt);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(Asn(10), Asn(20)).unwrap()
    }

    #[test]
    fn p2c_orientation() {
        let r = Rel::P2c { provider: Asn(10) };
        assert_eq!(r.class(), RelClass::P2c);
        assert_eq!(r.provider(), Some(Asn(10)));
        assert_eq!(r.customer_on(link()), Some(Asn(20)));
        assert!(r.is_valid_for(link()));
        let bad = Rel::P2c { provider: Asn(99) };
        assert!(!bad.is_valid_for(link()));
        assert_eq!(bad.customer_on(link()), None);
    }

    #[test]
    fn class_of_p2p_and_s2s() {
        assert_eq!(Rel::P2p.class(), RelClass::P2p);
        assert_eq!(Rel::S2s.class(), RelClass::S2s);
        assert_eq!(Rel::P2p.provider(), None);
        assert!(Rel::P2p.is_valid_for(link()));
    }

    #[test]
    fn orientation_matters_for_agreement() {
        let ab = Rel::P2c { provider: Asn(10) };
        let ba = Rel::P2c { provider: Asn(20) };
        assert!(!ab.agrees_with(&ba));
        assert!(ab.agrees_with(&ab));
        assert_eq!(ab.class(), ba.class());
    }

    #[test]
    fn gtrel_complexity() {
        let simple = GtRel::simple(Rel::P2p);
        assert!(!simple.is_complex());
        assert_eq!(simple.observable_labels(), vec![Rel::P2p]);

        let partial = GtRel::partial(Asn(10));
        assert!(partial.is_complex());
        assert_eq!(partial.base.provider(), Some(Asn(10)));

        let hybrid = GtRel::hybrid(Rel::P2p, Rel::P2c { provider: Asn(10) });
        assert!(hybrid.is_complex());
        assert_eq!(hybrid.observable_labels().len(), 2);
    }
}
