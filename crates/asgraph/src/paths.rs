//! Observed BGP AS paths and the statistics derived from them.
//!
//! Relationship-inference algorithms never see the real graph — they see AS
//! paths collected at vantage points (route-collector peers). This module
//! provides the path representation plus the derived quantities the paper's
//! algorithms rely on: node degree, *transit degree* (Luckie et al. 2013),
//! per-link vantage-point visibility, and AS triplets.

use crate::asn::Asn;
use crate::link::Link;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A raw AS path as observed in a BGP update / RIB entry, nearest AS first
/// (index 0 is the collector-adjacent AS, the last element is the origin).
/// May contain prepending (consecutive repeats).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsPath(Vec<Asn>);

impl AsPath {
    /// Wraps a hop sequence.
    #[must_use]
    pub fn new(hops: Vec<Asn>) -> Self {
        AsPath(hops)
    }

    /// The raw hops, prepending included.
    #[must_use]
    pub fn hops(&self) -> &[Asn] {
        &self.0
    }

    /// Number of raw hops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the path has no hops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The originating AS (last hop), if any.
    #[must_use]
    pub fn origin(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// The collector-adjacent AS (first hop), if any.
    #[must_use]
    pub fn head(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    /// The path with consecutive duplicates (prepending) removed.
    #[must_use]
    pub fn compressed(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> = Vec::with_capacity(self.0.len());
        for &hop in &self.0 {
            if out.last() != Some(&hop) {
                out.push(hop);
            }
        }
        out
    }

    /// `true` if an AS re-appears non-consecutively (a routing loop artefact);
    /// such paths are discarded by every sanitisation stage in the paper's
    /// algorithms.
    #[must_use]
    pub fn has_loop(&self) -> bool {
        let compressed = self.compressed();
        let mut seen = HashSet::with_capacity(compressed.len());
        compressed.iter().any(|hop| !seen.insert(*hop))
    }

    /// `true` if any hop is a reserved ASN or `AS_TRANS`.
    #[must_use]
    pub fn has_reserved(&self) -> bool {
        self.0.iter().any(|a| a.is_reserved())
    }

    /// The links of the compressed path, in order.
    #[must_use]
    pub fn links(&self) -> Vec<Link> {
        let c = self.compressed();
        c.windows(2).filter_map(|w| Link::new(w[0], w[1])).collect()
    }

    /// The AS triplets `(left, middle, right)` of the compressed path.
    #[must_use]
    pub fn triplets(&self) -> Vec<(Asn, Asn, Asn)> {
        let c = self.compressed();
        c.windows(3).map(|w| (w[0], w[1], w[2])).collect()
    }

    /// How many times the origin prepended itself beyond the first occurrence.
    #[must_use]
    pub fn origin_prepend_count(&self) -> usize {
        let Some(origin) = self.origin() else {
            return 0;
        };
        self.0.iter().rev().take_while(|&&h| h == origin).count() - 1
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for hop in &self.0 {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", hop.0)?;
            first = false;
        }
        Ok(())
    }
}

/// A path together with the vantage point (collector-peer AS) it was observed at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedPath {
    /// The vantage-point AS that exported this path to the collector.
    pub vp: Asn,
    /// The observed path (the VP itself is the first hop).
    pub path: AsPath,
}

/// The collection of all paths observed across all vantage points — the input
/// to every inference algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PathSet {
    paths: Vec<ObservedPath>,
}

impl PathSet {
    /// An empty path set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from observed paths.
    #[must_use]
    pub fn from_paths(paths: Vec<ObservedPath>) -> Self {
        PathSet { paths }
    }

    /// Adds one observed path.
    pub fn push(&mut self, vp: Asn, path: AsPath) {
        self.paths.push(ObservedPath { vp, path });
    }

    /// All observed paths.
    #[must_use]
    pub fn paths(&self) -> &[ObservedPath] {
        &self.paths
    }

    /// Number of observed paths.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if no paths were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The distinct vantage points, sorted.
    #[must_use]
    pub fn vantage_points(&self) -> Vec<Asn> {
        let set: BTreeSet<Asn> = self.paths.iter().map(|p| p.vp).collect();
        set.into_iter().collect()
    }

    /// Retains only loop-free paths without reserved ASNs — the common
    /// sanitisation prefix of all three classifiers.
    #[must_use]
    pub fn sanitized(&self) -> PathSet {
        let _span = breval_obs::span!("sanitize");
        let sanitized = PathSet {
            paths: self
                .paths
                .iter()
                .filter(|p| !p.path.has_loop() && !p.path.has_reserved())
                .cloned()
                .collect(),
        };
        breval_obs::counter(
            "paths_sanitized_dropped",
            (self.paths.len() - sanitized.paths.len()) as u64,
        );
        breval_obs::counter("paths_sanitized_kept", sanitized.paths.len() as u64);
        sanitized
    }

    /// Computes the derived statistics in one pass.
    #[must_use]
    pub fn stats(&self) -> PathStats {
        let mut neighbors: HashMap<Asn, HashSet<Asn>> = HashMap::new();
        let mut transit: HashMap<Asn, HashSet<Asn>> = HashMap::new();
        let mut link_vps: HashMap<Link, HashSet<Asn>> = HashMap::new();
        for op in &self.paths {
            let c = op.path.compressed();
            for w in c.windows(2) {
                if let Some(link) = Link::new(w[0], w[1]) {
                    neighbors.entry(w[0]).or_default().insert(w[1]);
                    neighbors.entry(w[1]).or_default().insert(w[0]);
                    link_vps.entry(link).or_default().insert(op.vp);
                }
            }
            for w in c.windows(3) {
                let t = transit.entry(w[1]).or_default();
                t.insert(w[0]);
                t.insert(w[2]);
            }
        }
        PathStats {
            node_degree: neighbors.iter().map(|(a, s)| (*a, s.len())).collect(),
            transit_degree: transit.iter().map(|(a, s)| (*a, s.len())).collect(),
            link_vp_count: link_vps.iter().map(|(l, s)| (*l, s.len())).collect(),
            links: link_vps.keys().copied().collect(),
        }
    }
}

/// Statistics derived from a [`PathSet`] in a single pass.
#[derive(Debug, Clone, Default)]
pub struct PathStats {
    node_degree: HashMap<Asn, usize>,
    transit_degree: HashMap<Asn, usize>,
    link_vp_count: HashMap<Link, usize>,
    links: BTreeSet<Link>,
}

impl PathStats {
    /// Node degree of `asn` (distinct path neighbors).
    #[must_use]
    pub fn node_degree(&self, asn: Asn) -> usize {
        self.node_degree.get(&asn).copied().unwrap_or(0)
    }

    /// Transit degree of `asn`: the number of distinct neighbors adjacent to
    /// `asn` in paths where `asn` occupies a transit (interior) position
    /// (Luckie et al. 2013, §5).
    #[must_use]
    pub fn transit_degree(&self, asn: Asn) -> usize {
        self.transit_degree.get(&asn).copied().unwrap_or(0)
    }

    /// Number of distinct vantage points that observed `link`.
    #[must_use]
    pub fn vp_count(&self, link: Link) -> usize {
        self.link_vp_count.get(&link).copied().unwrap_or(0)
    }

    /// All observed links, sorted.
    #[must_use]
    pub fn links(&self) -> &BTreeSet<Link> {
        &self.links
    }

    /// ASes ranked by descending transit degree (ties by ascending ASN).
    #[must_use]
    pub fn transit_degree_ranking(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.transit_degree.keys().copied().collect();
        v.sort_by_key(|a| (std::cmp::Reverse(self.transit_degree(*a)), a.0));
        v
    }

    /// All ASes with a nonzero node degree, sorted by ASN.
    #[must_use]
    pub fn ases(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.node_degree.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::new(hops.iter().map(|&h| Asn(h)).collect())
    }

    #[test]
    fn compression_removes_prepending() {
        let p = path(&[1, 2, 2, 2, 3]);
        assert_eq!(p.compressed(), vec![Asn(1), Asn(2), Asn(3)]);
        assert_eq!(p.origin(), Some(Asn(3)));
        assert_eq!(p.head(), Some(Asn(1)));
        assert!(!p.has_loop());
        assert_eq!(p.origin_prepend_count(), 0);
        assert_eq!(path(&[1, 2, 3, 3, 3]).origin_prepend_count(), 2);
    }

    #[test]
    fn loop_detection_ignores_prepending() {
        assert!(!path(&[1, 2, 2, 3]).has_loop());
        assert!(path(&[1, 2, 3, 2]).has_loop());
        assert!(path(&[1, 2, 1]).has_loop());
        assert!(!path(&[]).has_loop());
    }

    #[test]
    fn links_and_triplets() {
        let p = path(&[1, 2, 2, 3, 4]);
        assert_eq!(
            p.links(),
            vec![
                Link::new(Asn(1), Asn(2)).unwrap(),
                Link::new(Asn(2), Asn(3)).unwrap(),
                Link::new(Asn(3), Asn(4)).unwrap()
            ]
        );
        assert_eq!(
            p.triplets(),
            vec![(Asn(1), Asn(2), Asn(3)), (Asn(2), Asn(3), Asn(4))]
        );
    }

    #[test]
    fn reserved_detection() {
        assert!(path(&[1, 23456, 3]).has_reserved());
        assert!(path(&[1, 64512, 3]).has_reserved());
        assert!(!path(&[1, 2, 3]).has_reserved());
    }

    #[test]
    fn sanitized_drops_bad_paths() {
        let mut ps = PathSet::new();
        ps.push(Asn(1), path(&[1, 2, 3]));
        ps.push(Asn(1), path(&[1, 2, 1])); // loop
        ps.push(Asn(1), path(&[1, 23456, 3])); // AS_TRANS
        let clean = ps.sanitized();
        assert_eq!(clean.len(), 1);
    }

    #[test]
    fn stats_node_and_transit_degree() {
        let mut ps = PathSet::new();
        // 1-2-3 and 4-2-5: AS2 transits for {1,3,4,5}.
        ps.push(Asn(1), path(&[1, 2, 3]));
        ps.push(Asn(4), path(&[4, 2, 5]));
        let st = ps.stats();
        assert_eq!(st.node_degree(Asn(2)), 4);
        assert_eq!(st.transit_degree(Asn(2)), 4);
        assert_eq!(st.transit_degree(Asn(1)), 0);
        assert_eq!(st.node_degree(Asn(1)), 1);
        assert_eq!(st.vp_count(Link::new(Asn(1), Asn(2)).unwrap()), 1);
        assert_eq!(st.links().len(), 4);
        assert_eq!(st.transit_degree_ranking()[0], Asn(2));
    }

    #[test]
    fn vp_count_distinct() {
        let mut ps = PathSet::new();
        ps.push(Asn(1), path(&[1, 2, 3]));
        ps.push(Asn(1), path(&[1, 2, 4]));
        ps.push(Asn(9), path(&[9, 1, 2]));
        let st = ps.stats();
        assert_eq!(st.vp_count(Link::new(Asn(1), Asn(2)).unwrap()), 2);
        assert_eq!(ps.vantage_points(), vec![Asn(1), Asn(9)]);
    }
}
