//! Role-segmented compressed-sparse-row adjacency.
//!
//! [`CsrGraph`] is the dense mirror of [`AsGraph`](crate::AsGraph): ASNs are
//! interned to `u32` ids ([`AsIndexer`]) and each relationship role
//! (providers / customers / peers / siblings) becomes one CSR array — an
//! `offsets` prefix-sum plus a flat `targets` buffer — so a node's neighbor
//! list is a contiguous `&[u32]` slice. The hot kernels (customer-cone BFS,
//! class partition) walk these slices instead of chasing
//! `BTreeMap`/`BTreeSet` nodes, and the per-worker [`ConeScratch`] makes the
//! cone BFS allocation-free after warm-up: visited state is an epoch-stamped
//! `Vec<u32>` that is *never cleared* between cones — bumping the epoch
//! invalidates all stamps in O(1).
//!
//! Neighbor slices are sorted by id (= by ASN, since ids are assigned in
//! ASN order), so CSR iteration reproduces the BTree iteration order
//! bit-for-bit.

use crate::graph::AsGraph;
use crate::index::AsIndexer;

/// One role's adjacency in compressed-sparse-row form. Fields are
/// crate-visible so the binary codec (`crate::io`) can rebuild a role
/// from validated arrays without an intermediate copy.
#[derive(Debug, Clone, Default)]
pub(crate) struct Csr {
    /// `offsets[i]..offsets[i + 1]` indexes `targets` for node `i`;
    /// length `node_count + 1`.
    pub(crate) offsets: Vec<u32>,
    /// Concatenated neighbor ids, sorted within each node's segment.
    pub(crate) targets: Vec<u32>,
}

impl Csr {
    fn with_nodes(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        Csr {
            offsets,
            targets: Vec::new(),
        }
    }

    fn close_node(&mut self) {
        self.offsets.push(self.targets.len() as u32);
    }

    fn neighbors(&self, id: u32) -> &[u32] {
        let lo = self.offsets[id as usize] as usize;
        let hi = self.offsets[id as usize + 1] as usize;
        &self.targets[lo..hi]
    }
}

/// A relationship-labelled AS graph in dense CSR form. Built once from an
/// [`AsGraph`] and immutable afterwards; all ids refer to
/// [`CsrGraph::indexer`].
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    pub(crate) indexer: AsIndexer,
    pub(crate) providers: Csr,
    pub(crate) customers: Csr,
    pub(crate) peers: Csr,
    pub(crate) siblings: Csr,
}

impl CsrGraph {
    /// Builds the CSR mirror of `graph` in one pass over its adjacency.
    ///
    /// The source adjacency iterates ASes and neighbor sets in ascending
    /// ASN order, so every CSR segment comes out sorted by id without a
    /// sort pass.
    #[must_use]
    pub fn build(graph: &AsGraph) -> Self {
        let indexer = AsIndexer::from_sorted(graph.ases().collect());
        let n = indexer.len();
        let mut providers = Csr::with_nodes(n);
        let mut customers = Csr::with_nodes(n);
        let mut peers = Csr::with_nodes(n);
        let mut siblings = Csr::with_nodes(n);
        for (_, adj) in graph.adjacency_entries() {
            for (csr, set) in [
                (&mut providers, &adj.providers),
                (&mut customers, &adj.customers),
                (&mut peers, &adj.peers),
                (&mut siblings, &adj.siblings),
            ] {
                for &neighbor in set {
                    let id = indexer
                        .id(neighbor)
                        .expect("every neighbor is a graph node");
                    csr.targets.push(id);
                }
                csr.close_node();
            }
        }
        breval_obs::counter("csr_nodes_indexed", n as u64);
        CsrGraph {
            indexer,
            providers,
            customers,
            peers,
            siblings,
        }
    }

    /// The ASN ↔ id bijection this graph was built with.
    #[must_use]
    pub fn indexer(&self) -> &AsIndexer {
        &self.indexer
    }

    /// Number of nodes (= `indexer().len()`).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.indexer.len()
    }

    /// Transit providers of node `id`, sorted by id.
    #[must_use]
    pub fn providers(&self, id: u32) -> &[u32] {
        self.providers.neighbors(id)
    }

    /// Transit customers of node `id`, sorted by id.
    #[must_use]
    pub fn customers(&self, id: u32) -> &[u32] {
        self.customers.neighbors(id)
    }

    /// Settlement-free peers of node `id`, sorted by id.
    #[must_use]
    pub fn peers(&self, id: u32) -> &[u32] {
        self.peers.neighbors(id)
    }

    /// Same-organisation siblings of node `id`, sorted by id.
    #[must_use]
    pub fn siblings(&self, id: u32) -> &[u32] {
        self.siblings.neighbors(id)
    }

    /// Size of the customer cone of `id` (self included), computed by an
    /// allocation-free BFS over the customer CSR: `scratch` is reused across
    /// calls, so after the first cone on a graph of this size no allocation
    /// happens at all.
    #[must_use]
    pub fn customer_cone_size(&self, id: u32, scratch: &mut ConeScratch) -> usize {
        self.cone_bfs(id, scratch);
        scratch.queue.len()
    }

    /// The customer-cone member ids of `id` (self included), in BFS order.
    /// The returned slice borrows `scratch` and is valid until its next use.
    #[must_use]
    pub fn customer_cone_ids<'s>(&self, id: u32, scratch: &'s mut ConeScratch) -> &'s [u32] {
        self.cone_bfs(id, scratch);
        &scratch.queue
    }

    /// BFS from `id` over customer edges; on return `scratch.queue` holds
    /// the visited set.
    fn cone_bfs(&self, id: u32, scratch: &mut ConeScratch) {
        scratch.begin(self.node_count());
        scratch.mark(id);
        // breval-lint: allow(L010) -- push into scratch queue whose capacity was reserved by begin()
        scratch.queue.push(id);
        let mut head = 0;
        while head < scratch.queue.len() {
            let current = scratch.queue[head];
            head += 1;
            for &customer in self.customers(current) {
                if scratch.mark(customer) {
                    // breval-lint: allow(L010) -- push into scratch queue whose capacity was reserved by begin()
                    scratch.queue.push(customer);
                }
            }
        }
    }
}

/// Reusable per-worker BFS state: an epoch-stamped visited array plus the
/// BFS queue. Designed for `breval_par::parallel_map_init` — one scratch per
/// worker, thousands of cones each, zero allocation after the first.
#[derive(Debug, Default)]
pub struct ConeScratch {
    /// `visited[i] == epoch` means node `i` was visited in the current BFS.
    visited: Vec<u32>,
    /// Current BFS generation; bumping it invalidates all stamps in O(1).
    epoch: u32,
    /// BFS frontier and, once drained, the visited set of the current cone.
    queue: Vec<u32>,
}

impl ConeScratch {
    /// A fresh scratch (allocates lazily on first use).
    #[must_use]
    pub fn new() -> Self {
        ConeScratch::default()
    }

    /// Prepares for a BFS over `n` nodes: resizes the visited array if the
    /// graph size changed and advances the epoch (wrapping safely — on
    /// overflow the array is zeroed so stale stamps can never collide).
    fn begin(&mut self, n: usize) {
        if self.visited.len() != n {
            self.visited.clear();
            // breval-lint: allow(L010) -- sanctioned scratch growth point: begin() amortizes allocation across cones
            self.visited.resize(n, 0);
            self.epoch = 0;
        }
        if self.epoch == u32::MAX {
            self.visited.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.queue.clear();
    }

    /// Marks `id` visited; `true` if it was not already visited this epoch.
    fn mark(&mut self, id: u32) -> bool {
        let slot = &mut self.visited[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::Asn;
    use crate::link::Link;
    use crate::rel::Rel;

    fn l(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).expect("distinct endpoints")
    }

    fn p2c(provider: u32) -> Rel {
        Rel::P2c {
            provider: Asn(provider),
        }
    }

    fn sample() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_rel(l(1, 2), p2c(1)).unwrap();
        g.add_rel(l(2, 3), p2c(2)).unwrap();
        g.add_rel(l(2, 4), p2c(2)).unwrap();
        g.add_rel(l(2, 5), Rel::P2p).unwrap();
        g.add_rel(l(2, 6), Rel::S2s).unwrap();
        g
    }

    #[test]
    fn csr_mirrors_graph_roles() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        let id = |a: u32| csr.indexer().id(Asn(a)).unwrap();
        let asns =
            |ids: &[u32]| -> Vec<Asn> { ids.iter().map(|&i| csr.indexer().asn(i)).collect() };
        assert_eq!(csr.node_count(), 6);
        assert_eq!(asns(csr.customers(id(2))), vec![Asn(3), Asn(4)]);
        assert_eq!(asns(csr.providers(id(2))), vec![Asn(1)]);
        assert_eq!(asns(csr.peers(id(2))), vec![Asn(5)]);
        assert_eq!(asns(csr.siblings(id(2))), vec![Asn(6)]);
        assert!(csr.customers(id(3)).is_empty());
    }

    #[test]
    fn cone_bfs_matches_reference() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        let mut scratch = ConeScratch::new();
        let id1 = csr.indexer().id(Asn(1)).unwrap();
        // Cone of 1 = {1, 2, 3, 4}: peers/siblings do not extend it.
        assert_eq!(csr.customer_cone_size(id1, &mut scratch), 4);
        let mut cone: Vec<Asn> = csr
            .customer_cone_ids(id1, &mut scratch)
            .iter()
            .map(|&i| csr.indexer().asn(i))
            .collect();
        cone.sort();
        assert_eq!(cone, vec![Asn(1), Asn(2), Asn(3), Asn(4)]);
    }

    #[test]
    fn scratch_reuse_does_not_leak_between_cones() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        let mut scratch = ConeScratch::new();
        let sizes: Vec<usize> = (0..csr.node_count() as u32)
            .map(|i| csr.customer_cone_size(i, &mut scratch))
            .collect();
        // 1 → 4 nodes, 2 → 3, everything else is a stub cone of itself.
        assert_eq!(sizes, vec![4, 3, 1, 1, 1, 1]);
        // Re-running with the same scratch gives identical answers.
        let again: Vec<usize> = (0..csr.node_count() as u32)
            .map(|i| csr.customer_cone_size(i, &mut scratch))
            .collect();
        assert_eq!(sizes, again);
    }

    #[test]
    fn scratch_adapts_to_graph_size_changes() {
        let g1 = sample();
        let csr1 = CsrGraph::build(&g1);
        let mut g2 = AsGraph::new();
        g2.add_rel(l(1, 2), p2c(1)).unwrap();
        let csr2 = CsrGraph::build(&g2);
        let mut scratch = ConeScratch::new();
        assert_eq!(csr1.customer_cone_size(0, &mut scratch), 4);
        assert_eq!(csr2.customer_cone_size(0, &mut scratch), 2);
        assert_eq!(csr1.customer_cone_size(0, &mut scratch), 4);
    }
}
