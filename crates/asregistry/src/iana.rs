//! IANA's list of initial ASN block assignments.
//!
//! IANA hands out ASN blocks to the RIRs; the paper bootstraps its ASN→region
//! mapping from this table before refining with delegation files. We implement
//! the table as ordered, non-overlapping blocks with a text serialisation
//! modelled on the IANA registry CSV
//! (`<first>-<last>,<authority>` per line, `#` comments).

use crate::error::RegistryError;
use crate::region::RirRegion;
use asgraph::Asn;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Who an IANA ASN block is assigned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockAuthority {
    /// Assigned to an RIR for further delegation.
    Rir(RirRegion),
    /// Reserved by IANA (documentation, private use, special purpose).
    Reserved,
    /// Not yet allocated.
    Unallocated,
}

impl BlockAuthority {
    fn as_str(self) -> String {
        match self {
            BlockAuthority::Rir(r) => format!("Assigned by {}", r.registry_name()),
            BlockAuthority::Reserved => "Reserved".to_owned(),
            BlockAuthority::Unallocated => "Unallocated".to_owned(),
        }
    }

    fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("reserved") {
            return Some(BlockAuthority::Reserved);
        }
        if s.eq_ignore_ascii_case("unallocated") {
            return Some(BlockAuthority::Unallocated);
        }
        let name = s
            .strip_prefix("Assigned by ")
            .or_else(|| s.strip_prefix("assigned by "))?;
        name.parse::<RirRegion>().ok().map(BlockAuthority::Rir)
    }
}

/// One contiguous ASN block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsnBlock {
    /// First ASN of the block (inclusive).
    pub start: u32,
    /// Last ASN of the block (inclusive).
    pub end: u32,
    /// The block's authority.
    pub authority: BlockAuthority,
}

/// The IANA ASN assignment table: sorted, non-overlapping blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IanaAsnTable {
    blocks: Vec<AsnBlock>,
}

impl IanaAsnTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a block, enforcing order and non-overlap.
    pub fn push_block(
        &mut self,
        start: u32,
        end: u32,
        authority: BlockAuthority,
    ) -> Result<(), RegistryError> {
        if start > end {
            return Err(RegistryError::MalformedIanaLine {
                line: 0,
                reason: format!("block start {start} > end {end}"),
            });
        }
        if let Some(last) = self.blocks.last() {
            if start <= last.end {
                return Err(RegistryError::OverlappingBlocks { start });
            }
        }
        self.blocks.push(AsnBlock {
            start,
            end,
            authority,
        });
        Ok(())
    }

    /// The blocks in ascending order.
    #[must_use]
    pub fn blocks(&self) -> &[AsnBlock] {
        &self.blocks
    }

    /// Looks up the authority for `asn` (binary search).
    #[must_use]
    pub fn authority(&self, asn: Asn) -> Option<BlockAuthority> {
        let idx = self.blocks.partition_point(|b| b.end < asn.0);
        self.blocks.get(idx).and_then(|b| {
            if b.start <= asn.0 && asn.0 <= b.end {
                Some(b.authority)
            } else {
                None
            }
        })
    }

    /// The region an ASN was initially assigned to, if it went to an RIR.
    #[must_use]
    pub fn initial_region(&self, asn: Asn) -> Option<RirRegion> {
        match self.authority(asn)? {
            BlockAuthority::Rir(r) => Some(r),
            _ => None,
        }
    }

    /// Serialises in the IANA-registry-like CSV form.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("# Autonomous System (AS) Numbers\n# Range,Authority\n");
        for b in &self.blocks {
            let _ = writeln!(out, "{}-{},{}", b.start, b.end, b.authority.as_str());
        }
        out
    }

    /// Parses the CSV form produced by [`IanaAsnTable::to_text`].
    pub fn parse(text: &str) -> Result<Self, RegistryError> {
        let mut table = IanaAsnTable::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (range, auth) =
                line.split_once(',')
                    .ok_or_else(|| RegistryError::MalformedIanaLine {
                        line: line_no,
                        reason: "missing ',' separator".into(),
                    })?;
            let (start, end) = match range.split_once('-') {
                Some((s, e)) => (s.trim(), e.trim()),
                None => (range.trim(), range.trim()),
            };
            let start: u32 = start
                .parse()
                .map_err(|_| RegistryError::MalformedIanaLine {
                    line: line_no,
                    reason: format!("bad start {start:?}"),
                })?;
            let end: u32 = end.parse().map_err(|_| RegistryError::MalformedIanaLine {
                line: line_no,
                reason: format!("bad end {end:?}"),
            })?;
            let authority =
                BlockAuthority::parse(auth).ok_or_else(|| RegistryError::MalformedIanaLine {
                    line: line_no,
                    reason: format!("bad authority {auth:?}"),
                })?;
            table.push_block(start, end, authority)?;
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IanaAsnTable {
        let mut t = IanaAsnTable::new();
        t.push_block(0, 0, BlockAuthority::Reserved).unwrap();
        t.push_block(1, 1876, BlockAuthority::Rir(RirRegion::Arin))
            .unwrap();
        t.push_block(1877, 1901, BlockAuthority::Rir(RirRegion::RipeNcc))
            .unwrap();
        t.push_block(1902, 2042, BlockAuthority::Rir(RirRegion::Apnic))
            .unwrap();
        t.push_block(2043, 2043, BlockAuthority::Reserved).unwrap();
        t.push_block(2044, 10000, BlockAuthority::Unallocated)
            .unwrap();
        t
    }

    #[test]
    fn lookup_inside_blocks() {
        let t = sample();
        assert_eq!(t.initial_region(Asn(100)), Some(RirRegion::Arin));
        assert_eq!(t.initial_region(Asn(1880)), Some(RirRegion::RipeNcc));
        assert_eq!(t.initial_region(Asn(2043)), None);
        assert_eq!(t.authority(Asn(2043)), Some(BlockAuthority::Reserved));
        assert_eq!(t.authority(Asn(5000)), Some(BlockAuthority::Unallocated));
        assert_eq!(t.authority(Asn(999_999)), None);
    }

    #[test]
    fn boundary_lookup() {
        let t = sample();
        assert_eq!(t.initial_region(Asn(1)), Some(RirRegion::Arin));
        assert_eq!(t.initial_region(Asn(1876)), Some(RirRegion::Arin));
        assert_eq!(t.initial_region(Asn(1877)), Some(RirRegion::RipeNcc));
    }

    #[test]
    fn rejects_overlap_and_inverted() {
        let mut t = sample();
        assert!(matches!(
            t.push_block(9000, 9100, BlockAuthority::Reserved),
            Err(RegistryError::OverlappingBlocks { .. })
        ));
        let mut t2 = IanaAsnTable::new();
        assert!(t2.push_block(10, 5, BlockAuthority::Reserved).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let text = t.to_text();
        let parsed = IanaAsnTable::parse(&text).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(IanaAsnTable::parse("1-2\n").is_err());
        assert!(IanaAsnTable::parse("a-b,Reserved\n").is_err());
        assert!(IanaAsnTable::parse("1-2,Assigned by mars\n").is_err());
        // Comments and blanks are fine.
        assert!(IanaAsnTable::parse("# hi\n\n").unwrap().blocks().is_empty());
        // Single-ASN form.
        let t = IanaAsnTable::parse("7,Reserved\n").unwrap();
        assert_eq!(t.authority(Asn(7)), Some(BlockAuthority::Reserved));
    }
}
