//! The RIR *extended delegation file* format (the `delegated-<rir>-extended`
//! files the paper pulls from each registry's FTP server).
//!
//! Format-faithful subset: version line, summary lines, and `asn` records
//! (`registry|cc|asn|start|count|date|status|opaque-id`). Non-`asn` records
//! (`ipv4`/`ipv6`) are tolerated and skipped, as the paper only consumes ASN
//! delegations.

use crate::error::RegistryError;
use crate::region::RirRegion;
use asgraph::Asn;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Status of a delegation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelegationStatus {
    /// Allocated to an LIR/ISP.
    Allocated,
    /// Assigned to an end user.
    Assigned,
    /// Available in the registry's free pool.
    Available,
    /// Reserved by the registry.
    Reserved,
}

impl DelegationStatus {
    fn as_str(self) -> &'static str {
        match self {
            DelegationStatus::Allocated => "allocated",
            DelegationStatus::Assigned => "assigned",
            DelegationStatus::Available => "available",
            DelegationStatus::Reserved => "reserved",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "allocated" => Some(DelegationStatus::Allocated),
            "assigned" => Some(DelegationStatus::Assigned),
            "available" => Some(DelegationStatus::Available),
            "reserved" => Some(DelegationStatus::Reserved),
            _ => None,
        }
    }
}

/// One `asn` record of an extended delegation file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelegationRecord {
    /// ISO-3166 country code (or `ZZ` for unknown).
    pub cc: String,
    /// First delegated ASN.
    pub start: Asn,
    /// Number of consecutive ASNs delegated.
    pub count: u32,
    /// Delegation date, `YYYYMMDD`.
    pub date: String,
    /// Record status.
    pub status: DelegationStatus,
    /// Registry-internal opaque holder id (same holder ⇒ same id).
    pub opaque_id: String,
}

impl DelegationRecord {
    /// Iterates the ASNs covered by this record.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        (self.start.0..self.start.0.saturating_add(self.count)).map(Asn)
    }
}

/// An extended delegation file for one RIR on one day.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelegationFile {
    /// The publishing registry.
    pub registry: RirRegion,
    /// Publication date, `YYYYMMDD` (also used as the serial).
    pub date: String,
    /// The `asn` records.
    pub records: Vec<DelegationRecord>,
}

impl DelegationFile {
    /// Creates an empty file for `registry` dated `date`.
    #[must_use]
    pub fn new(registry: RirRegion, date: impl Into<String>) -> Self {
        DelegationFile {
            registry,
            date: date.into(),
            records: Vec::new(),
        }
    }

    /// Serialises to the extended delegation text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let reg = self.registry.registry_name();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "2|{reg}|{date}|{n}|19850701|{date}|+0000",
            date = self.date,
            n = self.records.len()
        );
        let _ = writeln!(out, "{reg}|*|asn|*|{}|summary", self.records.len());
        for r in &self.records {
            let _ = writeln!(
                out,
                "{reg}|{cc}|asn|{start}|{count}|{date}|{status}|{oid}",
                cc = r.cc,
                start = r.start.0,
                count = r.count,
                date = r.date,
                status = r.status.as_str(),
                oid = r.opaque_id
            );
        }
        out
    }

    /// Parses the text format. Tolerates comment lines (`#`), version and
    /// summary lines, and skips `ipv4`/`ipv6` records.
    pub fn parse(text: &str) -> Result<Self, RegistryError> {
        let mut registry: Option<RirRegion> = None;
        let mut date = String::new();
        let mut records = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').collect();
            // Version line: 2|registry|serial|records|startdate|enddate|UTCoff
            if fields.first() == Some(&"2") {
                if fields.len() < 7 {
                    return Err(RegistryError::MalformedDelegationLine {
                        line: line_no,
                        reason: "short version line".into(),
                    });
                }
                registry = Some(fields[1].parse().map_err(|e| {
                    RegistryError::MalformedDelegationLine {
                        line: line_no,
                        reason: e,
                    }
                })?);
                date = fields[2].to_owned();
                continue;
            }
            // Summary line: registry|*|type|*|count|summary
            if fields.len() == 6 && fields[5] == "summary" {
                continue;
            }
            if fields.len() < 7 {
                return Err(RegistryError::MalformedDelegationLine {
                    line: line_no,
                    reason: format!("expected ≥7 fields, got {}", fields.len()),
                });
            }
            let rec_registry: RirRegion =
                fields[0]
                    .parse()
                    .map_err(|e| RegistryError::MalformedDelegationLine {
                        line: line_no,
                        reason: e,
                    })?;
            if registry.is_none() {
                registry = Some(rec_registry);
            }
            if fields[2] != "asn" {
                continue; // ipv4 / ipv6 records are out of scope
            }
            let start: u32 =
                fields[3]
                    .parse()
                    .map_err(|_| RegistryError::MalformedDelegationLine {
                        line: line_no,
                        reason: format!("bad start ASN {:?}", fields[3]),
                    })?;
            let count: u32 =
                fields[4]
                    .parse()
                    .map_err(|_| RegistryError::MalformedDelegationLine {
                        line: line_no,
                        reason: format!("bad count {:?}", fields[4]),
                    })?;
            let status = DelegationStatus::parse(fields[6]).ok_or_else(|| {
                RegistryError::MalformedDelegationLine {
                    line: line_no,
                    reason: format!("bad status {:?}", fields[6]),
                }
            })?;
            records.push(DelegationRecord {
                cc: fields[1].to_owned(),
                start: Asn(start),
                count,
                date: fields[5].to_owned(),
                status,
                opaque_id: fields.get(7).copied().unwrap_or("").to_owned(),
            });
        }
        let registry = registry.ok_or(RegistryError::MalformedDelegationLine {
            line: 0,
            reason: "no version or record line found".into(),
        })?;
        Ok(DelegationFile {
            registry,
            date,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DelegationFile {
        let mut f = DelegationFile::new(RirRegion::Lacnic, "20180405");
        f.records.push(DelegationRecord {
            cc: "BR".into(),
            start: Asn(52_000),
            count: 4,
            date: "20150102".into(),
            status: DelegationStatus::Allocated,
            opaque_id: "lacnic-br-0001".into(),
        });
        f.records.push(DelegationRecord {
            cc: "AR".into(),
            start: Asn(52_100),
            count: 1,
            date: "20160708".into(),
            status: DelegationStatus::Assigned,
            opaque_id: "lacnic-ar-0002".into(),
        });
        f
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let text = f.to_text();
        assert!(text.starts_with("2|lacnic|20180405|2|"));
        assert!(text.contains("lacnic|*|asn|*|2|summary"));
        let parsed = DelegationFile::parse(&text).unwrap();
        assert_eq!(f, parsed);
    }

    #[test]
    fn record_asn_iteration() {
        let f = sample();
        let asns: Vec<Asn> = f.records[0].asns().collect();
        assert_eq!(asns, vec![Asn(52000), Asn(52001), Asn(52002), Asn(52003)]);
    }

    #[test]
    fn skips_ip_records() {
        let text = "\
2|ripencc|20180405|3|19850701|20180405|+0000
ripencc|*|ipv4|*|1|summary
ripencc|DE|ipv4|192.0.2.0|256|20100101|allocated|x
ripencc|DE|asn|3320|1|19930101|allocated|dtag
";
        let f = DelegationFile::parse(text).unwrap();
        assert_eq!(f.registry, RirRegion::RipeNcc);
        assert_eq!(f.records.len(), 1);
        assert_eq!(f.records[0].start, Asn(3320));
    }

    #[test]
    fn rejects_malformed() {
        assert!(DelegationFile::parse("").is_err());
        assert!(DelegationFile::parse("2|nowhere|x|0|a|b|c\n").is_err());
        let bad_status = "\
2|arin|20180405|1|19850701|20180405|+0000
arin|US|asn|1|1|19850101|stolen|x
";
        assert!(DelegationFile::parse(bad_status).is_err());
        let bad_count = "\
2|arin|20180405|1|19850701|20180405|+0000
arin|US|asn|1|lots|19850101|allocated|x
";
        assert!(DelegationFile::parse(bad_count).is_err());
    }

    #[test]
    fn parse_without_version_line_uses_record_registry() {
        let text = "apnic|JP|asn|173|1|20020801|allocated|A918EDA1\n";
        let f = DelegationFile::parse(text).unwrap();
        assert_eq!(f.registry, RirRegion::Apnic);
        assert_eq!(f.records.len(), 1);
    }
}
