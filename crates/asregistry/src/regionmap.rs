//! ASN → service-region mapping (the §5 methodology).
//!
//! IANA's initial block assignments bootstrap the mapping for every ASN; the
//! per-RIR extended delegation files then *refine* it, capturing resources
//! transferred between regions after the initial assignment (Prehn et al.,
//! CoNEXT 2020 observed such transfers become common after 2015).

use crate::delegation::{DelegationFile, DelegationStatus};
use crate::iana::IanaAsnTable;
use crate::region::RirRegion;
use asgraph::Asn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The combined ASN → region map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegionMap {
    iana: IanaAsnTable,
    /// Refinements from delegation files (these win over the IANA bootstrap).
    delegated: HashMap<Asn, RirRegion>,
}

impl RegionMap {
    /// Bootstrap from an IANA table only.
    #[must_use]
    pub fn from_iana(iana: IanaAsnTable) -> Self {
        RegionMap {
            iana,
            delegated: HashMap::new(),
        }
    }

    /// Refines the map with one delegation file. `available`/`reserved`
    /// records do not represent a holder in the region and are skipped.
    pub fn apply_delegations(&mut self, file: &DelegationFile) {
        for record in &file.records {
            match record.status {
                DelegationStatus::Allocated | DelegationStatus::Assigned => {
                    for asn in record.asns() {
                        self.delegated.insert(asn, file.registry);
                    }
                }
                DelegationStatus::Available | DelegationStatus::Reserved => {}
            }
        }
    }

    /// Bootstrap + refine in one call.
    #[must_use]
    pub fn build(iana: IanaAsnTable, files: &[DelegationFile]) -> Self {
        let mut map = RegionMap::from_iana(iana);
        for f in files {
            map.apply_delegations(f);
        }
        map
    }

    /// The service region of `asn`: delegation refinement first, IANA
    /// bootstrap second. Reserved ASNs map to `None`.
    #[must_use]
    pub fn region(&self, asn: Asn) -> Option<RirRegion> {
        if asn.is_reserved() {
            return None;
        }
        self.delegated
            .get(&asn)
            .copied()
            .or_else(|| self.iana.initial_region(asn))
    }

    /// Number of delegation-refined entries.
    #[must_use]
    pub fn refined_count(&self) -> usize {
        self.delegated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegation::DelegationRecord;
    use crate::iana::BlockAuthority;

    fn iana() -> IanaAsnTable {
        let mut t = IanaAsnTable::new();
        t.push_block(1, 1000, BlockAuthority::Rir(RirRegion::Arin))
            .unwrap();
        t.push_block(1001, 2000, BlockAuthority::Rir(RirRegion::RipeNcc))
            .unwrap();
        t
    }

    fn delegation(
        registry: RirRegion,
        start: u32,
        count: u32,
        status: DelegationStatus,
    ) -> DelegationFile {
        let mut f = DelegationFile::new(registry, "20180405");
        f.records.push(DelegationRecord {
            cc: registry.country_codes()[0].to_owned(),
            start: Asn(start),
            count,
            date: "20170101".into(),
            status,
            opaque_id: "h1".into(),
        });
        f
    }

    #[test]
    fn bootstrap_then_refine() {
        // AS500 starts in ARIN, is transferred to LACNIC.
        let files = vec![delegation(
            RirRegion::Lacnic,
            500,
            1,
            DelegationStatus::Allocated,
        )];
        let map = RegionMap::build(iana(), &files);
        assert_eq!(map.region(Asn(499)), Some(RirRegion::Arin));
        assert_eq!(map.region(Asn(500)), Some(RirRegion::Lacnic));
        assert_eq!(map.region(Asn(1500)), Some(RirRegion::RipeNcc));
        assert_eq!(map.refined_count(), 1);
    }

    #[test]
    fn available_records_do_not_refine() {
        let files = vec![delegation(
            RirRegion::Lacnic,
            500,
            1,
            DelegationStatus::Available,
        )];
        let map = RegionMap::build(iana(), &files);
        assert_eq!(map.region(Asn(500)), Some(RirRegion::Arin));
        assert_eq!(map.refined_count(), 0);
    }

    #[test]
    fn reserved_asns_have_no_region() {
        let map = RegionMap::from_iana(iana());
        assert_eq!(map.region(Asn(23456)), None);
        assert_eq!(map.region(Asn(64512)), None);
    }

    #[test]
    fn unassigned_asn_has_no_region() {
        let map = RegionMap::from_iana(iana());
        assert_eq!(map.region(Asn(999_999)), None);
    }

    #[test]
    fn multi_asn_record_refines_all() {
        let files = vec![delegation(
            RirRegion::Apnic,
            100,
            5,
            DelegationStatus::Assigned,
        )];
        let map = RegionMap::build(iana(), &files);
        for asn in 100..105 {
            assert_eq!(map.region(Asn(asn)), Some(RirRegion::Apnic));
        }
        assert_eq!(map.region(Asn(105)), Some(RirRegion::Arin));
    }
}
