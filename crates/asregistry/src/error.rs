//! Registry parsing errors.

use std::fmt;

/// Errors raised while parsing registry data formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A delegation-file line had the wrong number of fields or bad values.
    MalformedDelegationLine {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An IANA table line could not be parsed.
    MalformedIanaLine {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An AS2Org line could not be parsed.
    MalformedOrgLine {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Overlapping ASN blocks in an IANA table.
    OverlappingBlocks {
        /// Start of the second (conflicting) block.
        start: u32,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::MalformedDelegationLine { line, reason } => {
                write!(f, "delegation file line {line}: {reason}")
            }
            RegistryError::MalformedIanaLine { line, reason } => {
                write!(f, "IANA table line {line}: {reason}")
            }
            RegistryError::MalformedOrgLine { line, reason } => {
                write!(f, "AS2Org line {line}: {reason}")
            }
            RegistryError::OverlappingBlocks { start } => {
                write!(f, "overlapping IANA blocks at ASN {start}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}
