//! The five Regional Internet Registries and their service regions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A Regional Internet Registry (service region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RirRegion {
    /// AFRINIC — Africa.
    Afrinic,
    /// APNIC — Asia-Pacific.
    Apnic,
    /// ARIN — North America.
    Arin,
    /// LACNIC — Latin America and the Caribbean.
    Lacnic,
    /// RIPE NCC — Europe, Middle East, Central Asia.
    RipeNcc,
}

impl RirRegion {
    /// All regions in the paper's lexicographic abbreviation order
    /// (AF, AP, AR, L, R).
    pub const ALL: [RirRegion; 5] = [
        RirRegion::Afrinic,
        RirRegion::Apnic,
        RirRegion::Arin,
        RirRegion::Lacnic,
        RirRegion::RipeNcc,
    ];

    /// The paper's abbreviation: AF, AP, AR, L, R.
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            RirRegion::Afrinic => "AF",
            RirRegion::Apnic => "AP",
            RirRegion::Arin => "AR",
            RirRegion::Lacnic => "L",
            RirRegion::RipeNcc => "R",
        }
    }

    /// The registry name as used in delegation files.
    #[must_use]
    pub fn registry_name(self) -> &'static str {
        match self {
            RirRegion::Afrinic => "afrinic",
            RirRegion::Apnic => "apnic",
            RirRegion::Arin => "arin",
            RirRegion::Lacnic => "lacnic",
            RirRegion::RipeNcc => "ripencc",
        }
    }

    /// A representative set of ISO-3166 country codes per service region,
    /// used by the topology generator when emitting delegation records.
    #[must_use]
    pub fn country_codes(self) -> &'static [&'static str] {
        match self {
            RirRegion::Afrinic => &["ZA", "NG", "KE", "EG", "MA", "GH", "TZ"],
            RirRegion::Apnic => &["CN", "JP", "IN", "AU", "KR", "SG", "ID", "NZ"],
            RirRegion::Arin => &["US", "CA", "AG", "BS"],
            RirRegion::Lacnic => &["BR", "AR", "CL", "MX", "CO", "PE", "EC", "UY"],
            RirRegion::RipeNcc => &["DE", "FR", "GB", "NL", "RU", "IT", "SE", "PL", "ES", "CH"],
        }
    }

    /// Resolves an ISO-3166 country code to its service region, for the codes
    /// covered by [`RirRegion::country_codes`].
    #[must_use]
    pub fn from_country(cc: &str) -> Option<RirRegion> {
        RirRegion::ALL
            .into_iter()
            .find(|r| r.country_codes().contains(&cc))
    }
}

impl fmt::Display for RirRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.registry_name())
    }
}

impl FromStr for RirRegion {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "afrinic" | "af" => Ok(RirRegion::Afrinic),
            "apnic" | "ap" => Ok(RirRegion::Apnic),
            "arin" | "ar" => Ok(RirRegion::Arin),
            "lacnic" | "l" => Ok(RirRegion::Lacnic),
            "ripencc" | "ripe" | "ripe-ncc" | "r" => Ok(RirRegion::RipeNcc),
            other => Err(format!("unknown RIR: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrevs_match_paper() {
        assert_eq!(RirRegion::Afrinic.abbrev(), "AF");
        assert_eq!(RirRegion::Apnic.abbrev(), "AP");
        assert_eq!(RirRegion::Arin.abbrev(), "AR");
        assert_eq!(RirRegion::Lacnic.abbrev(), "L");
        assert_eq!(RirRegion::RipeNcc.abbrev(), "R");
    }

    #[test]
    fn roundtrip_names() {
        for r in RirRegion::ALL {
            assert_eq!(r.registry_name().parse::<RirRegion>().unwrap(), r);
            assert_eq!(r.abbrev().parse::<RirRegion>().unwrap(), r);
        }
        assert!("mars".parse::<RirRegion>().is_err());
    }

    #[test]
    fn country_lookup() {
        assert_eq!(RirRegion::from_country("BR"), Some(RirRegion::Lacnic));
        assert_eq!(RirRegion::from_country("DE"), Some(RirRegion::RipeNcc));
        assert_eq!(RirRegion::from_country("US"), Some(RirRegion::Arin));
        assert_eq!(RirRegion::from_country("XX"), None);
    }

    #[test]
    fn all_is_lexicographic_by_abbrev() {
        let abbrevs: Vec<_> = RirRegion::ALL.iter().map(|r| r.abbrev()).collect();
        let mut sorted = abbrevs.clone();
        sorted.sort();
        assert_eq!(abbrevs, sorted);
    }
}
