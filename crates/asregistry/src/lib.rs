//! # asregistry — Internet number-registry substrate
//!
//! The paper's §5 maps every ASN to a geographic *service region* in two steps:
//!
//! 1. bootstrap from IANA's list of initial 16-/32-bit ASN block assignments,
//! 2. refine with the daily *extended delegation files* published by the five
//!    RIRs, which capture post-assignment inter-RIR transfers.
//!
//! This crate implements both data sources byte-format-faithfully (the real
//! pipe-separated extended delegation format, including header/summary lines),
//! plus the CAIDA-style AS-to-Organisation dataset used in §4.2 to identify
//! sibling relationships.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delegation;
pub mod error;
pub mod iana;
pub mod org;
pub mod region;
pub mod regionmap;

pub use delegation::{DelegationFile, DelegationRecord, DelegationStatus};
pub use error::RegistryError;
pub use iana::{BlockAuthority, IanaAsnTable};
pub use org::{As2Org, OrgId};
pub use region::RirRegion;
pub use regionmap::RegionMap;
