//! AS-to-Organisation dataset (CAIDA-style), used in §4.2 to identify sibling
//! relationships: two ASes held by the same organisation form an S2S link that
//! must be excluded from validation unless explicitly handled.
//!
//! Text format modelled on CAIDA's historical as2org dump:
//!
//! ```text
//! # format: org_id|name|country
//! @org-1|Example Carrier Inc.|US
//! # format: aut|org_id
//! 64500|@org-1
//! ```

use crate::error::RegistryError;
use asgraph::{Asn, Link};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// An organisation identifier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OrgId(pub String);

/// Organisation metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrgInfo {
    /// Display name.
    pub name: String,
    /// ISO-3166 country code.
    pub country: String,
}

/// The AS-to-Organisation mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct As2Org {
    orgs: BTreeMap<OrgId, OrgInfo>,
    asn_to_org: BTreeMap<Asn, OrgId>,
}

impl As2Org {
    /// An empty mapping.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an organisation.
    pub fn add_org(&mut self, id: OrgId, name: impl Into<String>, country: impl Into<String>) {
        self.orgs.insert(
            id,
            OrgInfo {
                name: name.into(),
                country: country.into(),
            },
        );
    }

    /// Maps an ASN to an organisation (the org need not be pre-registered).
    pub fn assign(&mut self, asn: Asn, org: OrgId) {
        self.asn_to_org.insert(asn, org);
    }

    /// The organisation of `asn`, if known.
    #[must_use]
    pub fn org_of(&self, asn: Asn) -> Option<&OrgId> {
        self.asn_to_org.get(&asn)
    }

    /// Organisation metadata.
    #[must_use]
    pub fn org_info(&self, id: &OrgId) -> Option<&OrgInfo> {
        self.orgs.get(id)
    }

    /// `true` if both endpoints of `link` belong to the same organisation —
    /// i.e. the link is a sibling (S2S) link per §4.2.
    #[must_use]
    pub fn is_sibling_link(&self, link: Link) -> bool {
        match (self.org_of(link.a()), self.org_of(link.b())) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// All ASes of `org`, sorted.
    #[must_use]
    pub fn members(&self, org: &OrgId) -> Vec<Asn> {
        self.asn_to_org
            .iter()
            .filter(|(_, o)| *o == org)
            .map(|(a, _)| *a)
            .collect()
    }

    /// All organisations with more than one AS (the only ones that can form
    /// sibling links), sorted.
    #[must_use]
    pub fn multi_as_orgs(&self) -> Vec<OrgId> {
        let mut counts: BTreeMap<&OrgId, usize> = BTreeMap::new();
        for org in self.asn_to_org.values() {
            *counts.entry(org).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .filter(|(_, c)| *c > 1)
            .map(|(o, _)| o.clone())
            .collect()
    }

    /// Number of mapped ASNs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.asn_to_org.len()
    }

    /// `true` if no ASNs are mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.asn_to_org.is_empty()
    }

    /// Serialises to the two-section text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("# format: org_id|name|country\n");
        for (id, info) in &self.orgs {
            let _ = writeln!(out, "{}|{}|{}", id.0, info.name, info.country);
        }
        out.push_str("# format: aut|org_id\n");
        for (asn, org) in &self.asn_to_org {
            let _ = writeln!(out, "{}|{}", asn.0, org.0);
        }
        out
    }

    /// Parses the text format. Section membership is inferred per line: a line
    /// whose first field parses as a u32 is an `aut` line, otherwise an org
    /// line.
    pub fn parse(text: &str) -> Result<Self, RegistryError> {
        let mut out = As2Org::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').collect();
            if let Ok(asn) = fields[0].parse::<u32>() {
                if fields.len() < 2 {
                    return Err(RegistryError::MalformedOrgLine {
                        line: line_no,
                        reason: "aut line missing org_id".into(),
                    });
                }
                out.assign(Asn(asn), OrgId(fields[1].to_owned()));
            } else {
                if fields.len() < 3 {
                    return Err(RegistryError::MalformedOrgLine {
                        line: line_no,
                        reason: "org line needs org_id|name|country".into(),
                    });
                }
                out.add_org(OrgId(fields[0].to_owned()), fields[1], fields[2]);
            }
        }
        Ok(out)
    }

    /// Sibling ASN groups: one sorted set per multi-AS organisation.
    #[must_use]
    pub fn sibling_groups(&self) -> Vec<BTreeSet<Asn>> {
        self.multi_as_orgs()
            .iter()
            .map(|org| self.members(org).into_iter().collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> As2Org {
        let mut m = As2Org::new();
        m.add_org(OrgId("@carrier".into()), "Example Carrier", "US");
        m.add_org(OrgId("@single".into()), "Lone AS Org", "DE");
        m.assign(Asn(100), OrgId("@carrier".into()));
        m.assign(Asn(101), OrgId("@carrier".into()));
        m.assign(Asn(200), OrgId("@single".into()));
        m
    }

    #[test]
    fn sibling_detection() {
        let m = sample();
        assert!(m.is_sibling_link(Link::new(Asn(100), Asn(101)).unwrap()));
        assert!(!m.is_sibling_link(Link::new(Asn(100), Asn(200)).unwrap()));
        assert!(!m.is_sibling_link(Link::new(Asn(100), Asn(999)).unwrap()));
    }

    #[test]
    fn members_and_multi_orgs() {
        let m = sample();
        assert_eq!(
            m.members(&OrgId("@carrier".into())),
            vec![Asn(100), Asn(101)]
        );
        assert_eq!(m.multi_as_orgs(), vec![OrgId("@carrier".into())]);
        assert_eq!(m.sibling_groups().len(), 1);
        assert_eq!(m.sibling_groups()[0].len(), 2);
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let parsed = As2Org::parse(&m.to_text()).unwrap();
        assert_eq!(m, parsed);
    }

    #[test]
    fn parse_errors() {
        assert!(As2Org::parse("100\n").is_err());
        assert!(As2Org::parse("@org|name-only\n").is_err());
        assert!(As2Org::parse("# comment only\n").unwrap().is_empty());
    }

    #[test]
    fn org_info_lookup() {
        let m = sample();
        let info = m.org_info(&OrgId("@carrier".into())).unwrap();
        assert_eq!(info.name, "Example Carrier");
        assert_eq!(info.country, "US");
        assert!(m.org_info(&OrgId("@nope".into())).is_none());
    }
}
