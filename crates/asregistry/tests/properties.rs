//! Property-based tests: registry text formats round-trip and never panic on
//! arbitrary input.

use asgraph::Asn;
use asregistry::{
    delegation::{DelegationFile, DelegationRecord, DelegationStatus},
    iana::{BlockAuthority, IanaAsnTable},
    org::{As2Org, OrgId},
    RegionMap, RirRegion,
};
use proptest::prelude::*;

fn arb_region() -> impl Strategy<Value = RirRegion> {
    prop::sample::select(RirRegion::ALL.to_vec())
}

fn arb_status() -> impl Strategy<Value = DelegationStatus> {
    prop::sample::select(vec![
        DelegationStatus::Allocated,
        DelegationStatus::Assigned,
        DelegationStatus::Available,
        DelegationStatus::Reserved,
    ])
}

fn arb_record() -> impl Strategy<Value = DelegationRecord> {
    (
        arb_region(),
        1u32..400_000,
        1u32..8,
        arb_status(),
        "[a-z0-9]{4,12}",
    )
        .prop_map(|(region, start, count, status, oid)| DelegationRecord {
            cc: region.country_codes()[0].to_owned(),
            start: Asn(start),
            count,
            date: "20180405".into(),
            status,
            opaque_id: oid,
        })
}

proptest! {
    /// Delegation files round-trip through their text form.
    #[test]
    fn delegation_roundtrip(
        region in arb_region(),
        records in prop::collection::vec(arb_record(), 0..20),
    ) {
        let mut f = DelegationFile::new(region, "20180405");
        f.records = records;
        let parsed = DelegationFile::parse(&f.to_text()).unwrap();
        prop_assert_eq!(f, parsed);
    }

    /// The delegation parser never panics on arbitrary text.
    #[test]
    fn delegation_parse_never_panics(text in "\\PC*") {
        let _ = DelegationFile::parse(&text);
    }

    /// The IANA parser never panics on arbitrary text.
    #[test]
    fn iana_parse_never_panics(text in "\\PC*") {
        let _ = IanaAsnTable::parse(&text);
    }

    /// The AS2Org parser never panics on arbitrary text, and round-trips.
    #[test]
    fn org_roundtrip(
        assignments in prop::collection::btree_map(1u32..100_000, "[a-z]{1,6}", 0..30)
    ) {
        let mut m = As2Org::new();
        for (asn, org) in &assignments {
            m.assign(Asn(*asn), OrgId(format!("@{org}")));
        }
        let parsed = As2Org::parse(&m.to_text()).unwrap();
        prop_assert_eq!(m, parsed);
    }

    #[test]
    fn org_parse_never_panics(text in "\\PC*") {
        let _ = As2Org::parse(&text);
    }

    /// Region lookups obey the delegation-over-IANA precedence: any ASN with
    /// an allocated/assigned delegation record maps to the delegating RIR.
    #[test]
    fn delegation_overrides_iana(
        region in arb_region(),
        records in prop::collection::vec(arb_record(), 1..10),
    ) {
        let mut iana = IanaAsnTable::new();
        iana.push_block(1, 500_000, BlockAuthority::Rir(RirRegion::Arin)).unwrap();
        let mut f = DelegationFile::new(region, "20180405");
        f.records = records.clone();
        let map = RegionMap::build(iana, &[f]);
        for r in &records {
            let in_use = matches!(
                r.status,
                DelegationStatus::Allocated | DelegationStatus::Assigned
            );
            if in_use {
                for asn in r.asns() {
                    // Reserved ASNs never map to a region, even if a (bogus)
                    // delegation record covers them.
                    let expected = if asn.is_reserved() { None } else { Some(region) };
                    prop_assert_eq!(map.region(asn), expected);
                }
            }
        }
    }
}
