//! §6.1 — the Cogent case study.
//!
//! Take the links that drag down `PPV_P` in the `T1-TR` class (validated P2C
//! but inferred P2P — the "target links"), find the Tier-1 involved in most
//! of them, verify that no `clique|T1|X` triplet exists in the public paths
//! (the evidence ASRank would need for a P2C inference), and then query the
//! Tier-1's looking glass: routes tagged with the `…:990` action community
//! are partial-transit contracts; the remainder is inaccurate validation
//! data.

use crate::cleaning::CleanValidation;
use crate::metrics::ScoredLink;
use asgraph::{Asn, Link, PathSet, RelClass};
use asinfer::Inference;
use bgpsim::communities::AnyCommunity;
use bgpsim::LookingGlass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why a target link was wrongly inferred as P2P.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetReason {
    /// The customer tags the provider's no-export-to-peers community:
    /// a partial-transit contract.
    PartialTransit,
    /// No scoped-export evidence — the validation label itself is wrong.
    InaccurateValidation,
    /// The looking glass had no route to check (link invisible).
    NoRoute,
}

/// Forensics for one target link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetFinding {
    /// The link (Tier-1 and its alleged customer).
    pub link: Link,
    /// The non-Tier-1 endpoint.
    pub neighbor: Asn,
    /// Number of `clique|T1|neighbor` triplets found in public paths
    /// (expected 0 — otherwise ASRank would have inferred P2C).
    pub clique_triplets: usize,
    /// The verdict.
    pub reason: TargetReason,
}

/// The §6.1 case-study report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStudyReport {
    /// Target links per Tier-1 (who causes the PPV_P drop).
    pub per_tier1: BTreeMap<Asn, usize>,
    /// The Tier-1 under study (most target links).
    pub focus: Asn,
    /// Total target links in the class.
    pub total_targets: usize,
    /// Per-link findings for the focus Tier-1.
    pub findings: Vec<TargetFinding>,
    /// How many findings were partial transit.
    pub partial_transit: usize,
    /// How many findings were inaccurate validation.
    pub inaccurate_validation: usize,
}

/// Runs the case study.
///
/// * `scored_t1_tr` — the scored links of the `T1-TR` class,
/// * `inference` — the classifier whose errors are studied (ASRank in §6.1),
/// * `paths` — public route-collector paths (for the triplet search),
/// * `lg` — the looking glass over the simulated world.
#[must_use]
pub fn run_case_study(
    scored_t1_tr: &[ScoredLink],
    inference: &Inference,
    validation: &CleanValidation,
    paths: &PathSet,
    lg: &LookingGlass<'_>,
    tier1: &std::collections::BTreeSet<Asn>,
) -> CaseStudyReport {
    // Target links: inferred P2P, validated P2C.
    let targets: Vec<Link> = scored_t1_tr
        .iter()
        .filter(|s| s.inferred.class() == RelClass::P2p && s.validation.class() == RelClass::P2c)
        .map(|s| s.link)
        .collect();

    let mut per_tier1: BTreeMap<Asn, usize> = BTreeMap::new();
    for link in &targets {
        for end in [link.a(), link.b()] {
            if tier1.contains(&end) {
                *per_tier1.entry(end).or_insert(0) += 1;
            }
        }
    }
    let focus = per_tier1
        .iter()
        .max_by_key(|(asn, n)| (**n, std::cmp::Reverse(asn.0)))
        .map(|(asn, _)| *asn)
        .unwrap_or(Asn(0));

    // Pre-index triplets (w, focus, v) with w in the inferred clique.
    let mut clique_triplets: BTreeMap<Asn, usize> = BTreeMap::new();
    for op in paths.paths() {
        for (w, u, v) in op.path.triplets() {
            if u == focus && inference.clique.contains(&w) {
                *clique_triplets.entry(v).or_insert(0) += 1;
            }
        }
    }

    let mut findings = Vec::new();
    for link in &targets {
        if !link.contains(focus) {
            continue;
        }
        let Some(neighbor) = link.other(focus) else {
            continue;
        };
        let triplets = clique_triplets.get(&neighbor).copied().unwrap_or(0);
        let action = AnyCommunity::action_no_export_to_peers(focus);
        let reason = match lg.query(focus, neighbor) {
            Some(route) if route.communities.contains(&action) => TargetReason::PartialTransit,
            Some(_) => TargetReason::InaccurateValidation,
            None => TargetReason::NoRoute,
        };
        findings.push(TargetFinding {
            link: *link,
            neighbor,
            clique_triplets: triplets,
            reason,
        });
    }
    let partial = findings
        .iter()
        .filter(|f| f.reason == TargetReason::PartialTransit)
        .count();
    let inaccurate = findings
        .iter()
        .filter(|f| f.reason == TargetReason::InaccurateValidation)
        .count();

    let _ = validation; // kept in the signature for future label drill-downs
    CaseStudyReport {
        per_tier1,
        focus,
        total_targets: targets.len(),
        findings,
        partial_transit: partial,
        inaccurate_validation: inaccurate,
    }
}
