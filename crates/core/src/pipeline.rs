//! End-to-end scenario driver: generate → propagate → infer → compile
//! validation → clean → classify. Everything the figures and tables need,
//! in one deterministic object.

use crate::classes::LinkClassifier;
use crate::cleaning::{clean, CleanValidation, CleaningConfig};
use crate::coverage::{coverage_by_class_keyed, ClassCoverage};
use crate::heatmap::{Heatmap, HeatmapConfig};
use crate::metrics::{EvalTable, ScoredLink};
use crate::sanitize;
use crate::snapshot::{self, ScenarioSnapshot, SnapshotError, SnapshotKey};
use asgraph::{cone, AsGraph, ConeSizes, Link, PathSet, PathStats, PpdcCones};
use asinfer::{AsRank, Classifier, GaoClassifier, Inference, PreparedPaths, ProbLink, TopoScope};
use bgpsim::RibSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use topogen::{Topology, TopologyConfig};
use valdata::{ValDataConfig, ValidationSet};

/// Which per-AS metric a heatmap bins by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeatmapMetric {
    /// Fig. 3: transit degree.
    TransitDegree,
    /// Fig. 7: provider/peer observed customer cone size.
    Ppdc,
    /// Fig. 8: PPDC, excluding links incident to vantage-point ASes.
    PpdcNoVp,
    /// Fig. 9: node degree.
    NodeDegree,
}

/// Scenario configuration (one paper "snapshot").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Topology generation.
    pub topology: TopologyConfig,
    /// Validation-data compilation.
    pub valdata: ValDataConfig,
    /// §4.2 cleaning.
    pub cleaning: CleaningConfig,
    /// Minimum scored links for a class to appear in evaluation tables
    /// (the paper uses 500).
    pub min_class_links: usize,
    /// Also run the (slow, historical) Gao baseline.
    pub include_gao: bool,
    /// Use all three validation sources instead of the communities-only
    /// "best-effort" set the paper studies (kept for source-bias ablations).
    pub use_all_sources: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            topology: TopologyConfig::default(),
            valdata: ValDataConfig::default(),
            cleaning: CleaningConfig::default(),
            min_class_links: 500,
            include_gao: true,
            use_all_sources: false,
        }
    }
}

impl ScenarioConfig {
    /// A small scenario for tests (seeded).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        ScenarioConfig {
            topology: TopologyConfig::small(seed),
            min_class_links: 30,
            ..ScenarioConfig::default()
        }
    }
}

/// A fully-materialised scenario.
pub struct Scenario {
    /// The configuration that produced it.
    pub config: ScenarioConfig,
    /// The generated world.
    pub topology: Topology,
    /// The collector snapshot.
    pub snapshot: RibSnapshot,
    /// Observed paths (modern `AS4_PATH`-reconstructed view).
    pub paths: PathSet,
    /// Path-derived statistics.
    pub stats: PathStats,
    /// All observed links — the paper's "inferred links".
    pub inferred_links: BTreeSet<Link>,
    /// Per-classifier inference results.
    pub inferences: BTreeMap<String, Inference>,
    /// Raw validation labels.
    pub validation_raw: ValidationSet,
    /// Cleaned validation labels (§4.2).
    pub validation: CleanValidation,
    /// Link classifier (§5).
    pub classifier: LinkClassifier,
    /// One immutable [`ScenarioSnapshot`] per classifier, built lazily and
    /// shared (`Arc`) by every analysis path — the single cache that
    /// replaced the old per-kind cone/PPDC/scored maps.
    snapshot_cache: Mutex<BTreeMap<String, Arc<ScenarioSnapshot>>>,
}

impl Scenario {
    /// Runs the whole pipeline.
    #[must_use]
    pub fn run(config: ScenarioConfig) -> Self {
        let _span = breval_obs::span!("scenario_run");
        let topology = topogen::generate(&config.topology);
        if cfg!(debug_assertions) {
            match topology.ground_truth_graph() {
                Ok(g) => sanitize::debug_assert_clean("generate", &sanitize::check_graph(&g)),
                // breval-lint: allow(L009) -- debug-only abort: an invalid generated topology is unrecoverable
                Err(e) => panic!("generated topology is not a valid graph: {e:?}"),
            }
        }
        let snapshot = bgpsim::simulate(&topology);
        let paths = snapshot.to_pathset(false).sanitized();
        if cfg!(debug_assertions) {
            sanitize::debug_assert_clean("sanitized_paths", &sanitize::check_pathset(&paths));
        }
        let stats = {
            let _span = breval_obs::span!("path_stats");
            let stats = paths.stats();
            breval_obs::counter("links_inferred", stats.links().len() as u64);
            stats
        };
        let inferred_links: BTreeSet<Link> = stats.links().clone();

        // Inference ensemble. `paths` is already sanitized and `stats`
        // already derived, so every classifier runs over the shared
        // preparation; the full-view ASRank result additionally seeds the
        // bootstrap classifiers (ProbLink, TopoScope). ASRank runs first on
        // this thread — it is the shared seed — then the remaining
        // classifiers fan out over the work-stealing pool (one thread each;
        // `breval_par` degrades to inline execution at a thread cap of 1,
        // keeping results and span nesting identical either way: workers
        // adopt this thread's span context, so per-classifier timings land
        // under `scenario_run/infer_all/...` in the run manifest).
        let mut inferences: BTreeMap<String, Inference> = BTreeMap::new();
        let asrank = {
            let _span = breval_obs::span!("infer_all");
            let prep = PreparedPaths::new(&paths, &stats);
            let asrank = AsRank::new().infer_prepared_observed(prep);
            let prep = prep.with_asrank(&asrank);
            let mut names = vec!["problink", "toposcope"];
            if config.include_gao {
                names.push("gao");
            }
            let results = breval_par::parallel_map(names.len(), |i| match names[i] {
                "problink" => ProbLink::new().infer_prepared_observed(prep),
                "toposcope" => TopoScope::new().infer_prepared_observed(prep),
                _ => GaoClassifier::new().infer_prepared_observed(prep),
            });
            for (name, inference) in names.into_iter().zip(results) {
                inferences.insert(name.into(), inference);
            }
            asrank
        };

        let validation_raw = valdata::compile_all(&topology, &snapshot, &config.valdata);
        let org = topology.as2org();
        let selected = if config.use_all_sources {
            validation_raw.clone()
        } else {
            validation_raw.only_source(valdata::LabelSource::Communities)
        };
        let validation = clean(&selected, &org, &config.cleaning);

        // The §5 classifier derives cones from ASRank's inference (the CAIDA
        // cone dataset analogue) and takes the Tier-1 / hypergiant lists.
        // Its cones ARE the ASRank snapshot's cones: build that snapshot
        // here, once, and share it — the classifier, the ensemble, coverage,
        // and the heatmaps all read the same `Arc`s.
        let (classifier, asrank_snapshot) = {
            let _span = breval_obs::span!("link_classifier");
            let inferred_graph = graph_of(&asrank);
            breval_obs::counter("classifier_cone_links", asrank.rels.len() as u64);
            let snap = snapshot::build_snapshot("asrank", &inferred_graph);
            let cones = snap.cone_sizes().unwrap_or_default();
            let classifier = LinkClassifier::with_cone_sizes(
                region_map(&topology),
                cones,
                topology.tier1.clone(),
                topology.hypergiants.clone(),
            );
            (classifier, snap)
        };
        inferences.insert("asrank".into(), asrank);

        if cfg!(debug_assertions) {
            sanitize::debug_assert_clean(
                "clean_validation",
                &sanitize::check_validation_subset(&validation, &inferred_links),
            );
            sanitize::debug_assert_clean(
                "link_classifier",
                &sanitize::check_class_partition(
                    &classifier,
                    &inferred_links,
                    &topology.tier1,
                    &topology.hypergiants,
                ),
            );
        }

        // Seed the cache with the ASRank snapshot built alongside the
        // classifier, so `snapshot_arc("asrank")` never re-derives it.
        let snapshot_cache = Mutex::new(BTreeMap::from([(
            "asrank".to_owned(),
            Arc::new(asrank_snapshot),
        )]));

        Scenario {
            config,
            topology,
            snapshot,
            paths,
            stats,
            inferred_links,
            inferences,
            validation_raw,
            validation,
            classifier,
            snapshot_cache,
        }
    }

    /// The named classifier's [`ScenarioSnapshot`], built at most once and
    /// shared (the ASRank entry is pre-seeded from [`Scenario::run`]).
    /// Unknown names yield an empty snapshot, mirroring the empty tables
    /// the old per-kind caches handed out.
    #[must_use]
    pub fn snapshot_arc(&self, classifier_name: &str) -> Arc<ScenarioSnapshot> {
        let mut cache = self
            .snapshot_cache
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if let Some(hit) = cache.get(classifier_name) {
            return Arc::clone(hit);
        }
        let built = Arc::new(if self.inferences.contains_key(classifier_name) {
            ScenarioSnapshot::new_lazy(classifier_name)
        } else {
            ScenarioSnapshot::empty(classifier_name)
        });
        cache.insert(classifier_name.to_owned(), Arc::clone(&built));
        built
    }

    /// The CSR mirror of the named inference's relationship graph,
    /// materialised into the snapshot on first use and shared — the single
    /// place the analysis layer ever builds a [`asgraph::CsrGraph`].
    #[must_use]
    pub fn csr_arc(&self, classifier_name: &str) -> Arc<asgraph::CsrGraph> {
        let snap = self.snapshot_arc(classifier_name);
        Arc::clone(snap.csr.get_or_init(|| {
            Arc::new(match self.inferences.get(classifier_name) {
                Some(inference) => asgraph::CsrGraph::build(&graph_of(inference)),
                None => asgraph::CsrGraph::default(),
            })
        }))
    }

    /// Customer-cone sizes over the named inference's relationship graph,
    /// materialised into the snapshot on first use and shared (the ASRank
    /// entry is pre-built in [`Scenario::run`]). Unknown names yield an
    /// empty size table.
    #[must_use]
    pub fn cone_sizes_arc(&self, classifier_name: &str) -> Arc<ConeSizes> {
        let snap = self.snapshot_arc(classifier_name);
        Arc::clone(snap.cone_sizes.get_or_init(|| {
            if self.inferences.contains_key(classifier_name) {
                Arc::new(cone::customer_cone_sizes_csr(
                    &self.csr_arc(classifier_name),
                ))
            } else {
                Arc::new(ConeSizes::empty())
            }
        }))
    }

    /// PPDC bitset cones (paths × the named inference's relationships),
    /// materialised into the snapshot on first use and shared.
    #[must_use]
    pub fn ppdc_cones_arc(&self, classifier_name: &str) -> Arc<PpdcCones> {
        let snap = self.snapshot_arc(classifier_name);
        Arc::clone(snap.ppdc.get_or_init(|| {
            Arc::new(match self.inferences.get(classifier_name) {
                Some(inference) => cone::ppdc_cones(&self.paths, &inference.rels),
                None => PpdcCones::default(),
            })
        }))
    }

    /// PPDC cone sizes, derived once from the snapshot's bitset cones
    /// (popcount per row) and shared. Unknown names yield an empty table.
    #[must_use]
    pub fn ppdc_sizes_arc(&self, classifier_name: &str) -> Arc<ConeSizes> {
        let snap = self.snapshot_arc(classifier_name);
        Arc::clone(snap.ppdc_sizes.get_or_init(|| {
            let sizes = self.ppdc_cones_arc(classifier_name).sizes();
            if self.inferences.contains_key(classifier_name) {
                breval_obs::counter("ppdc_sizes_computed", sizes.len() as u64);
            }
            Arc::new(sizes)
        }))
    }

    /// The named inference (`"asrank"`, `"problink"`, `"toposcope"`, `"gao"`).
    #[must_use]
    pub fn inference(&self, name: &str) -> Option<&Inference> {
        self.inferences.get(name)
    }

    /// Joins one classifier's inferences with the cleaned validation labels.
    ///
    /// The join is computed at most once per classifier and cached; this
    /// returns a shared handle to the cached vector. Prefer this over
    /// [`Scenario::scored`] when the result is only read.
    #[must_use]
    pub fn scored_arc(&self, classifier_name: &str) -> Arc<Vec<ScoredLink>> {
        let snap = self.snapshot_arc(classifier_name);
        Arc::clone(snap.scored.get_or_init(|| {
            breval_obs::counter("scored_join_computed", 1);
            Arc::new(self.compute_scored(classifier_name))
        }))
    }

    /// Forces every lazy snapshot part for `classifier_name` and writes the
    /// snapshot to `dir`, keyed by (config hash, seed, classifier). Returns
    /// the path written.
    pub fn save_snapshot(
        &self,
        dir: &std::path::Path,
        classifier_name: &str,
    ) -> Result<std::path::PathBuf, SnapshotError> {
        let _ = self.cone_sizes_arc(classifier_name); // also forces the CSR
        let _ = self.ppdc_cones_arc(classifier_name);
        let _ = self.ppdc_sizes_arc(classifier_name);
        let _ = self.scored_arc(classifier_name);
        let snap = self.snapshot_arc(classifier_name);
        snap.save(dir, &self.snapshot_key(classifier_name))
    }

    /// The on-disk identity of this scenario's snapshot for one classifier.
    #[must_use]
    pub fn snapshot_key(&self, classifier_name: &str) -> SnapshotKey {
        SnapshotKey::of(&self.config, classifier_name)
    }

    /// Loads the persisted snapshot for (`config`, `classifier_name`) from
    /// `dir` without running the pipeline — the millisecond warm-start path.
    pub fn load_snapshot(
        dir: &std::path::Path,
        config: &ScenarioConfig,
        classifier_name: &str,
    ) -> Result<ScenarioSnapshot, SnapshotError> {
        ScenarioSnapshot::load(dir, &SnapshotKey::of(config, classifier_name))
    }

    fn compute_scored(&self, classifier_name: &str) -> Vec<ScoredLink> {
        let Some(inference) = self.inferences.get(classifier_name) else {
            return Vec::new();
        };
        self.validation
            .labels
            .iter()
            .filter_map(|(link, val)| {
                inference.rel(*link).map(|inf| ScoredLink {
                    link: *link,
                    validation: *val,
                    inferred: inf,
                })
            })
            .collect()
    }

    /// Joins one classifier's inferences with the cleaned validation labels,
    /// returning an owned copy (see [`Scenario::scored_arc`] for the
    /// borrowing variant backing it).
    #[must_use]
    pub fn scored(&self, classifier_name: &str) -> Vec<ScoredLink> {
        self.scored_arc(classifier_name).to_vec()
    }

    /// Scored links restricted to one class label (regional or topological).
    #[must_use]
    pub fn scored_in_class(&self, classifier_name: &str, class: &str) -> Vec<ScoredLink> {
        self.scored_arc(classifier_name)
            .iter()
            .filter(|s| {
                self.classifier
                    .region_class(s.link)
                    .map(|c| c.label() == class)
                    .unwrap_or(false)
                    || self.classifier.topo_class(s.link) == class
            })
            .copied()
            .collect()
    }

    /// Builds the Tables 1–3 analogue for one classifier: regional and
    /// topological class rows merged into one table.
    #[must_use]
    pub fn eval_table(&self, classifier_name: &str) -> EvalTable {
        let scored = self.scored_arc(classifier_name);
        let regional = EvalTable::build(
            classifier_name,
            &scored,
            |l| self.classifier.region_class(l).map(|c| c.label()),
            self.config.min_class_links,
        );
        let topo = EvalTable::build(
            classifier_name,
            &scored,
            |l| Some(self.classifier.topo_class(l)),
            self.config.min_class_links,
        );
        let mut rows = regional.rows;
        rows.extend(topo.rows);
        EvalTable {
            classifier: classifier_name.to_owned(),
            total: regional.total,
            rows,
        }
    }

    /// Fig. 1: regional link share vs validation coverage. Aggregates on the
    /// `Copy` [`crate::classes::RegionClass`] key; labels are materialised
    /// once per class at the end.
    #[must_use]
    pub fn fig1(&self) -> Vec<ClassCoverage> {
        let validated: BTreeSet<Link> = self.validation.labels.keys().copied().collect();
        coverage_by_class_keyed(
            &self.inferred_links,
            &validated,
            |l| self.classifier.region_class(l),
            |c| c.label(),
        )
    }

    /// Fig. 2: topological link share vs validation coverage. Aggregates on
    /// the dense `u8` pair code (region-gated like the paper: links with
    /// reserved/unmapped endpoints are discarded).
    #[must_use]
    pub fn fig2(&self) -> Vec<ClassCoverage> {
        let validated: BTreeSet<Link> = self.validation.labels.keys().copied().collect();
        coverage_by_class_keyed(
            &self.inferred_links,
            &validated,
            |l| {
                self.classifier
                    .region_class(l)
                    .map(|_| self.classifier.topo_pair_id(l))
            },
            |code| LinkClassifier::topo_pair_label(*code).to_string(),
        )
    }

    /// Figs. 3 / 7 / 8 / 9: (inferred, validated) heatmaps over `TR°` links,
    /// with PPDC metrics read from the ASRank snapshot (the paper's default
    /// view). See [`Scenario::heatmaps_for`] to plot another classifier.
    #[must_use]
    pub fn heatmaps(&self, metric: HeatmapMetric) -> (Heatmap, Heatmap) {
        self.heatmaps_for("asrank", metric)
    }

    /// [`Scenario::heatmaps`] for a named classifier: PPDC-binned metrics
    /// use *that* classifier's cones instead of being hard-wired to ASRank.
    #[must_use]
    pub fn heatmaps_for(&self, classifier_name: &str, metric: HeatmapMetric) -> (Heatmap, Heatmap) {
        let tr_links: Vec<Link> = self
            .inferred_links
            .iter()
            .filter(|l| self.classifier.is_tr_tr(**l))
            .copied()
            .collect();
        let validated: Vec<Link> = tr_links
            .iter()
            .filter(|l| self.validation.labels.contains_key(l))
            .copied()
            .collect();

        let vp_set: BTreeSet<asgraph::Asn> = self.paths.vantage_points().into_iter().collect();
        let (tr_links, validated) = if metric == HeatmapMetric::PpdcNoVp {
            (
                tr_links
                    .iter()
                    .filter(|l| !vp_set.contains(&l.a()) && !vp_set.contains(&l.b()))
                    .copied()
                    .collect::<Vec<_>>(),
                validated
                    .iter()
                    .filter(|l| !vp_set.contains(&l.a()) && !vp_set.contains(&l.b()))
                    .copied()
                    .collect::<Vec<_>>(),
            )
        } else {
            (tr_links, validated)
        };

        let config = match metric {
            HeatmapMetric::TransitDegree => HeatmapConfig::transit_degree(),
            HeatmapMetric::Ppdc | HeatmapMetric::PpdcNoVp => HeatmapConfig::ppdc(),
            HeatmapMetric::NodeDegree => HeatmapConfig::node_degree(),
        };
        let ppdc: Arc<ConeSizes> = match metric {
            HeatmapMetric::Ppdc | HeatmapMetric::PpdcNoVp => self.ppdc_sizes_arc(classifier_name),
            _ => Arc::new(ConeSizes::empty()),
        };
        let metric_fn = |asn: asgraph::Asn| -> usize {
            match metric {
                HeatmapMetric::TransitDegree => self.stats.transit_degree(asn),
                HeatmapMetric::NodeDegree => self.stats.node_degree(asn),
                HeatmapMetric::Ppdc | HeatmapMetric::PpdcNoVp => ppdc.get(asn).unwrap_or(1),
            }
        };
        (
            Heatmap::build(tr_links.iter(), metric_fn, config),
            Heatmap::build(validated.iter(), metric_fn, config),
        )
    }
}

/// Builds the plain relationship graph of an inference.
fn graph_of(inference: &Inference) -> AsGraph {
    let mut g = AsGraph::new();
    for (link, rel) in &inference.rels {
        // Conflicts cannot occur (one rel per link); ignore impossible errors.
        let _ = g.add_rel(*link, *rel);
    }
    g
}

/// Builds the §5 region map from the topology's registry artefacts, going
/// through the real text formats (IANA table + delegation files).
fn region_map(topology: &Topology) -> asregistry::RegionMap {
    let iana = topology.iana_table();
    let files = topology.delegation_files("20180405");
    asregistry::RegionMap::build(iana, &files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::run(ScenarioConfig::small(99))
    }

    #[test]
    fn pipeline_produces_everything() {
        let s = scenario();
        assert!(s.inferred_links.len() > 1000);
        assert!(s.validation.len() > 100);
        assert!(s.inferences.contains_key("asrank"));
        assert!(s.inferences.contains_key("problink"));
        assert!(s.inferences.contains_key("toposcope"));
        let scored = s.scored("asrank");
        assert!(scored.len() > 100);
        // Every scored link is both validated and inferred.
        for sl in scored.iter().take(50) {
            assert!(s.validation.labels.contains_key(&sl.link));
        }
    }

    #[test]
    fn fig1_shares_sum_to_one() {
        let s = scenario();
        let rows = s.fig1();
        assert!(!rows.is_empty());
        let sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        for r in &rows {
            assert!(r.coverage >= 0.0 && r.coverage <= 1.0);
        }
    }

    #[test]
    fn fig2_covers_topo_classes() {
        let s = scenario();
        let rows = s.fig2();
        let labels: Vec<&str> = rows.iter().map(|r| r.class.as_str()).collect();
        assert!(labels.contains(&"S-TR"), "classes: {labels:?}");
        assert!(labels.contains(&"TR°"), "classes: {labels:?}");
        assert!(labels.contains(&"S-T1"), "classes: {labels:?}");
    }

    #[test]
    fn eval_table_has_total_row() {
        let s = scenario();
        let table = s.eval_table("asrank");
        assert!(table.total.lc_p + table.total.lc_c > 100);
        assert!(!table.rows.is_empty());
    }

    #[test]
    fn heatmaps_are_normalised() {
        let s = scenario();
        for metric in [
            HeatmapMetric::TransitDegree,
            HeatmapMetric::Ppdc,
            HeatmapMetric::PpdcNoVp,
            HeatmapMetric::NodeDegree,
        ] {
            let (inf, val) = s.heatmaps(metric);
            if inf.links > 0 {
                let sum: f64 = inf.cells.iter().flatten().sum();
                assert!((sum - 1.0).abs() < 1e-9);
            }
            assert!(val.links <= inf.links);
        }
    }
}
