//! Domain-invariant sanitizer — the data-hygiene counterpart of the §4.2
//! cleaning census.
//!
//! The paper's core warning is that analysis conclusions rot silently when
//! the underlying data violates *unstated* invariants (validation links that
//! were never inferred, skewed class coverage, spurious entries). This
//! module states those invariants explicitly and checks them:
//!
//! * **graph well-formedness** — no self-loops, one relationship per link,
//!   P2C providers are link endpoints, adjacency views match the link map;
//! * **P2C acyclicity** — no AS is (transitively) its own provider;
//! * **path hygiene** — sanitized [`PathSet`]s contain no loops, reserved
//!   ASNs, or paths detached from their vantage point;
//! * **valley-free sanity** — simulated paths that traverse only simple
//!   (non-complex) ground-truth links obey Gao-Rexford valley-freeness;
//! * **validation ⊆ inferred** — every cleaned validation label refers to a
//!   link the pipeline actually observed (the paper's central premise);
//! * **class-partition completeness** — S/TR/T1/H assignments partition the
//!   ASes and produce only the paper's label vocabulary.
//!
//! Checks run in three places: inline at pipeline stage boundaries in debug
//! builds ([`debug_assert_clean`]), standalone over a freshly-run scenario
//! (`cargo run -p xtask -- sanitize`), and in unit tests over deliberately
//! corrupted inputs.

use crate::classes::{LinkClassifier, TopoClass};
use crate::cleaning::CleanValidation;
use crate::pipeline::Scenario;
use asgraph::{check_valley_free, AsGraph, Asn, Link, NeighborRole, PathSet, Rel};
use std::collections::{BTreeMap, BTreeSet};
use topogen::Topology;

/// One failed invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable check identifier, e.g. `self_loop`, `p2c_cycle`.
    pub check: &'static str,
    /// Human-readable description with the offending data.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Aggregated result of a sanitizer run.
#[derive(Debug, Clone, Default)]
pub struct SanitizeReport {
    /// All failed invariants.
    pub violations: Vec<Violation>,
    /// Informational `(name, value)` pairs (paths checked, links skipped…).
    pub stats: Vec<(String, String)>,
}

impl SanitizeReport {
    /// `true` if every invariant held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders a human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.stats {
            out.push_str(&format!("stat  {k} = {v}\n"));
        }
        if self.violations.is_empty() {
            out.push_str("sanitize: all invariants hold\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION {v}\n"));
            }
            out.push_str(&format!(
                "sanitize: {} violation(s)\n",
                self.violations.len()
            ));
        }
        out
    }

    fn stat(&mut self, name: &str, value: impl std::fmt::Display) {
        self.stats.push((name.to_owned(), value.to_string()));
    }
}

/// Caps repeated per-item violations so a systemic failure doesn't produce
/// an unreadable wall of output; the total is always reported.
const MAX_LISTED: usize = 5;

fn push_capped(out: &mut Vec<Violation>, listed: &mut usize, check: &'static str, detail: String) {
    if *listed < MAX_LISTED {
        out.push(Violation { check, detail });
    }
    *listed += 1;
}

fn flush_capped(out: &mut Vec<Violation>, listed: usize, check: &'static str, what: &str) {
    if listed > MAX_LISTED {
        out.push(Violation {
            check,
            detail: format!("… and {} more {what}", listed - MAX_LISTED),
        });
    }
}

/// Checks a raw relationship edge list — the representation external data
/// (CAIDA-style `a|b|rel` files, deserialized results) arrives in, *before*
/// the type system can enforce anything. Detects self-loops, conflicting
/// duplicate labels, P2C providers that are not endpoints, and P2C cycles.
#[must_use]
pub fn check_edge_list(edges: &[(Asn, Asn, Rel)]) -> Vec<Violation> {
    let mut out = check_edge_list_structure(edges);
    out.extend(check_p2c_acyclic(&p2c_edges(edges)));
    out
}

/// Structural checks only (self-loops, conflicts, off-link providers) —
/// *without* P2C acyclicity. Inferred relationship graphs are heuristic
/// output where provider cycles are an inference-error symptom, not a data
/// corruption; they get this check plus a cycle *count* in the stats.
#[must_use]
pub fn check_edge_list_structure(edges: &[(Asn, Asn, Rel)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut seen: BTreeMap<(Asn, Asn), Rel> = BTreeMap::new();
    for &(a, b, rel) in edges {
        if a == b {
            out.push(Violation {
                check: "self_loop",
                detail: format!("AS{} has a relationship with itself", a.0),
            });
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(prev) = seen.get(&key) {
            if *prev != rel {
                out.push(Violation {
                    check: "conflicting_rel",
                    detail: format!(
                        "link {}–{} labelled both {prev} and {rel}",
                        key.0 .0, key.1 .0
                    ),
                });
            }
        } else {
            seen.insert(key, rel);
        }
        if let Rel::P2c { provider } = rel {
            if provider != a && provider != b {
                out.push(Violation {
                    check: "provider_not_on_link",
                    detail: format!(
                        "provider AS{} is not an endpoint of {}–{}",
                        provider.0, a.0, b.0
                    ),
                });
            }
        }
    }
    out
}

/// Extracts the well-formed provider→customer edges.
fn p2c_edges(edges: &[(Asn, Asn, Rel)]) -> Vec<(Asn, Asn)> {
    edges
        .iter()
        .filter_map(|&(a, b, rel)| match rel {
            Rel::P2c { provider } if provider == a && a != b => Some((a, b)),
            Rel::P2c { provider } if provider == b && a != b => Some((b, a)),
            _ => None,
        })
        .collect()
}

/// The number of ASes sitting on provider cycles — zero for valid ground
/// truth; for inferred graphs, a measure of inference error.
#[must_use]
pub fn p2c_cycle_as_count(edges: &[(Asn, Asn, Rel)]) -> usize {
    p2c_cycle_residue(&p2c_edges(edges)).len()
}

/// Builds the p2c-cycle violation (if any) from the Kahn residue.
fn check_p2c_acyclic(p2c: &[(Asn, Asn)]) -> Vec<Violation> {
    let residue = p2c_cycle_residue(p2c);
    if residue.is_empty() {
        return Vec::new();
    }
    let mut sample: Vec<u32> = residue.iter().map(|a| a.0).collect();
    sample.truncate(8);
    vec![Violation {
        check: "p2c_cycle",
        detail: format!(
            "{} AS(es) sit on provider cycles (e.g. {sample:?}) — an AS would be its own \
             transitive provider",
            residue.len()
        ),
    }]
}

/// Kahn's algorithm over provider→customer edges: the residue — ASes never
/// freed of providers — are exactly those on (or strictly below) a cycle.
fn p2c_cycle_residue(p2c: &[(Asn, Asn)]) -> Vec<Asn> {
    let mut indegree: BTreeMap<Asn, usize> = BTreeMap::new();
    let mut down: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
    for &(provider, customer) in p2c {
        *indegree.entry(customer).or_insert(0) += 1;
        indegree.entry(provider).or_insert(0);
        down.entry(provider).or_default().push(customer);
    }
    let mut queue: Vec<Asn> = indegree
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(a, _)| *a)
        .collect();
    while let Some(a) = queue.pop() {
        for c in down.get(&a).map(Vec::as_slice).unwrap_or(&[]) {
            let d = indegree
                .get_mut(c)
                .expect("every customer was given an indegree entry");
            *d -= 1;
            if *d == 0 {
                queue.push(*c);
            }
        }
    }
    indegree
        .into_iter()
        .filter(|(_, d)| *d > 0)
        .map(|(a, _)| a)
        .collect()
}

/// Checks a typed [`AsGraph`]: edge-list invariants plus consistency of the
/// adjacency views with the link map (both directions of every link must
/// report matching [`NeighborRole`]s).
#[must_use]
pub fn check_graph(g: &AsGraph) -> Vec<Violation> {
    let edges: Vec<(Asn, Asn, Rel)> = g.links().map(|(l, r)| (l.a(), l.b(), r)).collect();
    let mut out = check_edge_list(&edges);
    let mut bad_roles = 0usize;
    for (link, rel) in g.links() {
        let (a, b) = link.endpoints();
        let expected = match rel {
            Rel::P2c { provider } if provider == b => {
                (NeighborRole::Provider, NeighborRole::Customer)
            }
            Rel::P2c { .. } => (NeighborRole::Customer, NeighborRole::Provider),
            Rel::P2p => (NeighborRole::Peer, NeighborRole::Peer),
            Rel::S2s => (NeighborRole::Sibling, NeighborRole::Sibling),
        };
        if g.role_of(a, b) != Some(expected.0) || g.role_of(b, a) != Some(expected.1) {
            push_capped(
                &mut out,
                &mut bad_roles,
                "adjacency_mismatch",
                format!("link {link} ({rel}) disagrees with the adjacency view"),
            );
        }
    }
    flush_capped(&mut out, bad_roles, "adjacency_mismatch", "links");
    out
}

/// Checks the hygiene invariants a sanitized [`PathSet`] must satisfy: no
/// loops, no reserved ASNs, and every path starts at its vantage point.
#[must_use]
pub fn check_pathset(ps: &PathSet) -> Vec<Violation> {
    let mut out = Vec::new();
    let (mut loops, mut reserved, mut detached) = (0usize, 0usize, 0usize);
    for op in ps.paths() {
        if op.path.has_loop() {
            push_capped(
                &mut out,
                &mut loops,
                "path_loop",
                format!("path [{}] revisits an AS", op.path),
            );
        }
        if op.path.has_reserved() {
            push_capped(
                &mut out,
                &mut reserved,
                "path_reserved",
                format!("path [{}] traverses a reserved ASN", op.path),
            );
        }
        if op.path.head() != Some(op.vp) {
            push_capped(
                &mut out,
                &mut detached,
                "path_detached_vp",
                format!("path [{}] does not start at its VP AS{}", op.path, op.vp.0),
            );
        }
    }
    flush_capped(&mut out, loops, "path_loop", "looping paths");
    flush_capped(&mut out, reserved, "path_reserved", "reserved-ASN paths");
    flush_capped(&mut out, detached, "path_detached_vp", "detached paths");
    out
}

/// Valley-free sanity of simulated paths against the ground truth.
///
/// Gao-Rexford propagation over *simple* relationships provably yields
/// valley-free paths, so any violation on a path whose links are all simple
/// is a pipeline bug. Paths touching complex links (partial transit, hybrid
/// PoPs) may legitimately look valley-violating — that observability gap is
/// part of the paper's argument — so they are only counted, not flagged.
#[must_use]
pub fn check_valley(ps: &PathSet, topo: &Topology) -> (Vec<Violation>, BTreeMap<String, usize>) {
    let mut out = Vec::new();
    let mut stats: BTreeMap<String, usize> = BTreeMap::new();
    let graph = match topo.ground_truth_graph() {
        Ok(g) => g,
        Err(e) => {
            out.push(Violation {
                check: "ground_truth_graph",
                detail: format!("topology's link set is not a valid graph: {e:?}"),
            });
            return (out, stats);
        }
    };
    let complex: BTreeSet<Link> = topo.complex_links().into_iter().collect();
    let mut flagged = 0usize;
    for op in ps.paths() {
        if op.path.links().iter().any(|l| complex.contains(l)) {
            *stats.entry("valley_skipped_complex".into()).or_insert(0) += 1;
            continue;
        }
        match check_valley_free(&graph, op.path.hops()) {
            Ok(()) => *stats.entry("valley_free".into()).or_insert(0) += 1,
            Err(v) => {
                push_capped(
                    &mut out,
                    &mut flagged,
                    "valley_violation",
                    format!("simple-link path [{}] is not valley-free: {v}", op.path),
                );
                *stats.entry("valley_violations".into()).or_insert(0) += 1;
            }
        }
    }
    flush_capped(&mut out, flagged, "valley_violation", "valley violations");
    (out, stats)
}

/// The paper's central premise: validation data can only validate links the
/// pipeline inferred. Any cleaned label outside the inferred link set means
/// the join silently shrinks and coverage numbers lie.
#[must_use]
pub fn check_validation_subset(
    validation: &CleanValidation,
    inferred: &BTreeSet<Link>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut missing = 0usize;
    for link in validation.labels.keys() {
        if !inferred.contains(link) {
            push_capped(
                &mut out,
                &mut missing,
                "validation_not_inferred",
                format!("validated link {link} was never inferred"),
            );
        }
    }
    flush_capped(
        &mut out,
        missing,
        "validation_not_inferred",
        "unmatched labels",
    );
    out
}

/// The topological classes must partition the ASes: the Tier-1 and
/// hypergiant refinement lists may not overlap (an AS in both would silently
/// classify as T1, skewing H-class coverage), every endpoint must classify,
/// and link labels must stay within the paper's vocabulary.
#[must_use]
pub fn check_class_partition(
    classifier: &LinkClassifier,
    links: &BTreeSet<Link>,
    tier1: &BTreeSet<Asn>,
    hypergiants: &BTreeSet<Asn>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let overlap: Vec<u32> = tier1.intersection(hypergiants).map(|a| a.0).collect();
    if !overlap.is_empty() {
        out.push(Violation {
            check: "class_overlap",
            detail: format!("ASes in both the Tier-1 and hypergiant lists: {overlap:?}"),
        });
    }
    // Valid pair labels, ordered H < S < T1 < TR as the classifier emits.
    let classes = [TopoClass::H, TopoClass::S, TopoClass::T1, TopoClass::TR];
    let mut vocab: BTreeSet<String> = BTreeSet::new();
    for (i, x) in classes.iter().enumerate() {
        vocab.insert(format!("{}°", x.label()));
        for y in &classes[i + 1..] {
            vocab.insert(format!("{}-{}", x.label(), y.label()));
        }
    }
    let mut bad_labels = 0usize;
    let mut counts: BTreeMap<TopoClass, usize> = BTreeMap::new();
    let mut seen: BTreeSet<Asn> = BTreeSet::new();
    for link in links {
        for asn in [link.a(), link.b()] {
            if seen.insert(asn) {
                *counts.entry(classifier.node_class(asn)).or_insert(0) += 1;
            }
        }
        let label = classifier.topo_class(*link);
        if !vocab.contains(&label) {
            push_capped(
                &mut out,
                &mut bad_labels,
                "class_label_vocabulary",
                format!("link {link} got out-of-vocabulary class label {label:?}"),
            );
        }
    }
    flush_capped(&mut out, bad_labels, "class_label_vocabulary", "bad labels");
    let classified: usize = counts.values().sum();
    if classified != seen.len() {
        out.push(Violation {
            check: "class_partition_incomplete",
            detail: format!("{} ASes seen but {} classified", seen.len(), classified),
        });
    }
    out
}

/// Runs every check over a materialised [`Scenario`] — the standalone entry
/// point behind `cargo run -p xtask -- sanitize`.
#[must_use]
pub fn sanitize_scenario(scenario: &Scenario) -> SanitizeReport {
    let _span = breval_obs::span!("sanitize_scenario");
    let mut report = SanitizeReport::default();

    // Ground-truth graph well-formedness + acyclicity.
    match scenario.topology.ground_truth_graph() {
        Ok(g) => {
            report.violations.extend(check_graph(&g));
            report.stat("ground_truth_links", g.link_count());
        }
        Err(e) => report.violations.push(Violation {
            check: "ground_truth_graph",
            detail: format!("{e:?}"),
        }),
    }

    // Sanitized path hygiene + valley-free sanity.
    report.violations.extend(check_pathset(&scenario.paths));
    let (valley, valley_stats) = check_valley(&scenario.paths, &scenario.topology);
    report.violations.extend(valley);
    for (k, v) in valley_stats {
        report.stat(&k, v);
    }
    report.stat("paths_checked", scenario.paths.len());

    // Every inferred relationship graph must be structurally well-formed.
    // Provider *cycles* in heuristic output are an inference-error symptom,
    // not corruption — surfaced as a stat rather than a violation.
    for (name, inference) in &scenario.inferences {
        let edges: Vec<(Asn, Asn, Rel)> = inference
            .rels
            .iter()
            .map(|(l, r)| (l.a(), l.b(), *r))
            .collect();
        let before = report.violations.len();
        report.violations.extend(check_edge_list_structure(&edges));
        if report.violations.len() == before {
            report.stat(&format!("inferred_graph_ok.{name}"), edges.len());
        }
        report.stat(
            &format!("inferred_p2c_cycle_ases.{name}"),
            p2c_cycle_as_count(&edges),
        );
    }

    // Validation ⊆ inferred, class partition.
    report.violations.extend(check_validation_subset(
        &scenario.validation,
        &scenario.inferred_links,
    ));
    report.stat("validation_labels", scenario.validation.len());
    report.violations.extend(check_class_partition(
        &scenario.classifier,
        &scenario.inferred_links,
        &scenario.topology.tier1,
        &scenario.topology.hypergiants,
    ));
    report.stat("inferred_links", scenario.inferred_links.len());

    breval_obs::counter("sanitize_violations", report.violations.len() as u64);
    report
}

/// Debug-build assertion used at pipeline stage boundaries: panics with the
/// full violation list if any invariant failed. Compiled to nothing in
/// release builds, so production throughput is unaffected.
pub fn debug_assert_clean(stage: &str, violations: &[Violation]) {
    if cfg!(debug_assertions) && !violations.is_empty() {
        // breval-lint: allow(L009) -- debug-build sanitizer abort by design; compiled out in release
        let list: Vec<String> = violations.iter().map(ToString::to_string).collect();
        panic!(
            "sanitize failed at stage `{stage}` with {} violation(s):\n{}",
            violations.len(),
            list.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asn(x: u32) -> Asn {
        Asn(x)
    }

    fn p2c(p: u32) -> Rel {
        Rel::P2c { provider: Asn(p) }
    }

    #[test]
    fn corrupted_graph_reports_self_loop_and_cycle() {
        // Seeded corruption: AS7 peers with itself, and 1→2→3→1 is a
        // provider cycle. Both must be detected in one pass.
        let edges = vec![
            (asn(7), asn(7), Rel::P2p),
            (asn(1), asn(2), p2c(1)),
            (asn(2), asn(3), p2c(2)),
            (asn(3), asn(1), p2c(3)),
            (asn(1), asn(9), p2c(1)), // innocent bystander
        ];
        let violations = check_edge_list(&edges);
        let checks: Vec<&str> = violations.iter().map(|v| v.check).collect();
        assert!(checks.contains(&"self_loop"), "violations: {violations:?}");
        assert!(checks.contains(&"p2c_cycle"), "violations: {violations:?}");
        assert_eq!(checks.len(), 2, "no spurious findings: {violations:?}");
    }

    #[test]
    fn conflicting_and_offlink_providers_detected() {
        let edges = vec![
            (asn(1), asn(2), p2c(1)),
            (asn(2), asn(1), p2c(2)), // same link, reversed orientation
            (asn(3), asn(4), p2c(9)), // provider not on link
        ];
        let checks: Vec<&str> = check_edge_list(&edges).iter().map(|v| v.check).collect();
        assert!(checks.contains(&"conflicting_rel"));
        assert!(checks.contains(&"provider_not_on_link"));
    }

    #[test]
    fn clean_edge_list_passes() {
        let edges = vec![
            (asn(1), asn(2), p2c(1)),
            (asn(2), asn(3), p2c(2)),
            (asn(1), asn(3), Rel::P2p),
        ];
        assert!(check_edge_list(&edges).is_empty());
    }

    #[test]
    fn well_formed_graph_passes_check_graph() {
        let mut g = AsGraph::new();
        let l = |a: u32, b: u32| Link::new(Asn(a), Asn(b)).expect("distinct endpoints");
        g.add_rel(l(1, 2), p2c(1)).expect("fresh link");
        g.add_rel(l(2, 3), Rel::P2p).expect("fresh link");
        assert!(check_graph(&g).is_empty());
    }

    #[test]
    fn pathset_hygiene_detects_loops_reserved_and_detached() {
        let mut ps = PathSet::new();
        let path = |hops: &[u32]| asgraph::AsPath::new(hops.iter().map(|&h| Asn(h)).collect());
        ps.push(asn(1), path(&[1, 2, 3, 2])); // loop
        ps.push(asn(1), path(&[1, 64512, 3])); // reserved
        ps.push(asn(9), path(&[1, 2, 3])); // head ≠ vp
        let checks: Vec<&str> = check_pathset(&ps).iter().map(|v| v.check).collect();
        assert!(checks.contains(&"path_loop"));
        assert!(checks.contains(&"path_reserved"));
        assert!(checks.contains(&"path_detached_vp"));
    }

    #[test]
    fn validation_subset_flags_unknown_links() {
        let mut validation = CleanValidation::default();
        let known = Link::new(asn(1), asn(2)).expect("distinct");
        let unknown = Link::new(asn(8), asn(9)).expect("distinct");
        validation.labels.insert(known, Rel::P2p);
        validation.labels.insert(unknown, Rel::P2p);
        let inferred: BTreeSet<Link> = [known].into_iter().collect();
        let v = check_validation_subset(&validation, &inferred);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "validation_not_inferred");
        assert!(v[0].detail.contains('8') && v[0].detail.contains('9'));
    }
}
