//! §5 — link classes.
//!
//! **Regional** classes come from the two-step ASN→region mapping (IANA
//! bootstrap + delegation-file refinement, provided by `asregistry`): links
//! within one region are `<R>°` (e.g. `L°`), links across regions are
//! `<R1>-<R2>` with the lexicographically smaller abbreviation first.
//!
//! **Topological** classes start from Stub/Transit (customer cone over the
//! *inferred* graph, as the paper uses CAIDA's cone data) and are refined by
//! the Tier-1 and hypergiant lists. Class labels follow the paper's
//! convention (`S-TR`, `TR°`, `T1-TR`, `H-S`, …).

use asgraph::{cone, AsGraph, AsIndexer, Asn, ConeSizes, Link};
use asregistry::{RegionMap, RirRegion};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A regional link class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegionClass {
    /// Both ASes in the same region.
    Intra(RirRegion),
    /// ASes in two different regions (stored in abbreviation order).
    Inter(RirRegion, RirRegion),
}

impl RegionClass {
    /// Builds the class for two regions, normalising the order.
    #[must_use]
    pub fn of(a: RirRegion, b: RirRegion) -> Self {
        if a == b {
            RegionClass::Intra(a)
        } else if a.abbrev() < b.abbrev() {
            RegionClass::Inter(a, b)
        } else {
            RegionClass::Inter(b, a)
        }
    }

    /// The paper's label: `R°`, `AR-L`, ….
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RegionClass::Intra(r) => format!("{}°", r.abbrev()),
            RegionClass::Inter(a, b) => format!("{}-{}", a.abbrev(), b.abbrev()),
        }
    }
}

/// A node's topological class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TopoClass {
    /// Hypergiant (from the Böttger et al.-style list).
    H,
    /// Stub (empty inferred customer cone).
    S,
    /// Tier-1 (from the Wikipedia-style list).
    T1,
    /// Transit (non-empty inferred customer cone).
    TR,
}

impl TopoClass {
    /// Short label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TopoClass::H => "H",
            TopoClass::S => "S",
            TopoClass::T1 => "T1",
            TopoClass::TR => "TR",
        }
    }
}

/// The Stub/Transit/T1/hypergiant partition materialised once as a flat
/// per-id class array, so per-link classification is two binary searches
/// plus two array reads — no set probes, no `HashMap` lookups.
#[derive(Debug, Clone, Default)]
pub struct TopoIndex {
    indexer: AsIndexer,
    classes: Vec<TopoClass>,
}

impl TopoIndex {
    /// Builds the partition over every AS mentioned by the cone sizes or the
    /// refinement lists, with the paper's precedence T1 > H > TR > S.
    #[must_use]
    pub fn build(
        cone_sizes: &ConeSizes,
        tier1: &BTreeSet<Asn>,
        hypergiants: &BTreeSet<Asn>,
    ) -> Self {
        let mut asns: Vec<Asn> = cone_sizes.indexer().iter().collect();
        asns.extend(tier1.iter().copied());
        asns.extend(hypergiants.iter().copied());
        let indexer = AsIndexer::from_unsorted(asns);
        let classes = indexer
            .iter()
            .map(|asn| {
                if tier1.contains(&asn) {
                    TopoClass::T1
                } else if hypergiants.contains(&asn) {
                    TopoClass::H
                } else if cone_sizes.get(asn).unwrap_or(1) > 1 {
                    TopoClass::TR
                } else {
                    TopoClass::S
                }
            })
            .collect();
        TopoIndex { indexer, classes }
    }

    /// The class of `asn`, or `None` for ASes outside the partition
    /// (callers default those to [`TopoClass::S`]).
    #[must_use]
    pub fn class(&self, asn: Asn) -> Option<TopoClass> {
        self.indexer.id(asn).map(|id| self.classes[id as usize])
    }

    /// The indexer the class array is aligned to.
    #[must_use]
    pub fn indexer(&self) -> &AsIndexer {
        &self.indexer
    }
}

/// Assigns regional and topological classes to links.
#[derive(Debug, Clone)]
pub struct LinkClassifier {
    region_map: RegionMap,
    topo: TopoIndex,
    cone_sizes: Arc<ConeSizes>,
}

impl LinkClassifier {
    /// Builds a classifier.
    ///
    /// * `region_map` — the §5 ASN→region mapping,
    /// * `inferred_graph` — the graph of *inferred* relationships, over which
    ///   customer cones are computed (mirrors using CAIDA's cone dataset),
    /// * `tier1` / `hypergiants` — the external refinement lists.
    #[must_use]
    pub fn new(
        region_map: RegionMap,
        inferred_graph: &AsGraph,
        tier1: BTreeSet<Asn>,
        hypergiants: BTreeSet<Asn>,
    ) -> Self {
        Self::with_cone_sizes(
            region_map,
            // breval-lint: allow(L012) -- compatibility constructor for
            // standalone classifier use; the pipeline itself goes through
            // Scenario's snapshot layer (`with_cone_sizes`).
            Arc::new(cone::customer_cone_sizes(inferred_graph)),
            tier1,
            hypergiants,
        )
    }

    /// Builds a classifier around already-computed customer-cone sizes,
    /// sharing them with the caller instead of re-deriving them from the
    /// inferred graph (see [`LinkClassifier::new`]).
    #[must_use]
    pub fn with_cone_sizes(
        region_map: RegionMap,
        cone_sizes: Arc<ConeSizes>,
        tier1: BTreeSet<Asn>,
        hypergiants: BTreeSet<Asn>,
    ) -> Self {
        let topo = TopoIndex::build(&cone_sizes, &tier1, &hypergiants);
        LinkClassifier {
            region_map,
            topo,
            cone_sizes,
        }
    }

    /// Shared handle to the customer-cone sizes backing the Stub/Transit
    /// split.
    #[must_use]
    pub fn cone_sizes_arc(&self) -> Arc<ConeSizes> {
        Arc::clone(&self.cone_sizes)
    }

    /// The dense topological partition the classifier works over.
    #[must_use]
    pub fn topo_index(&self) -> &TopoIndex {
        &self.topo
    }

    /// The service region of an AS.
    #[must_use]
    pub fn region(&self, asn: Asn) -> Option<RirRegion> {
        self.region_map.region(asn)
    }

    /// The regional class of a link; `None` when either endpoint is reserved
    /// or unmapped (such links are discarded in §5).
    #[must_use]
    pub fn region_class(&self, link: Link) -> Option<RegionClass> {
        let a = self.region(link.a())?;
        let b = self.region(link.b())?;
        Some(RegionClass::of(a, b))
    }

    /// The topological class of an AS (ASes outside the partition are stubs).
    #[must_use]
    pub fn node_class(&self, asn: Asn) -> TopoClass {
        self.topo.class(asn).unwrap_or(TopoClass::S)
    }

    /// A dense code for the (unordered) topological class pair of a link:
    /// `min * 4 + max` with classes ordered H, S, T1, TR. Codes are what the
    /// keyed coverage kernel aggregates on; [`LinkClassifier::topo_pair_label`]
    /// maps them back to the paper's labels at the serialization boundary.
    #[must_use]
    pub fn topo_pair_id(&self, link: Link) -> u8 {
        let (a, b) = (self.node_class(link.a()), self.node_class(link.b()));
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        (x as u8) * 4 + (y as u8)
    }

    /// The label behind a [`LinkClassifier::topo_pair_id`] code (`S-TR`,
    /// `TR°`, `H-T1`, …), in the paper's H, S, T1, TR pair order.
    ///
    /// # Panics
    /// If `code` is not a valid pair code.
    #[must_use]
    pub fn topo_pair_label(code: u8) -> &'static str {
        match code {
            0 => "H°",
            1 => "H-S",
            2 => "H-T1",
            3 => "H-TR",
            5 => "S°",
            6 => "S-T1",
            7 => "S-TR",
            10 => "T1°",
            11 => "T1-TR",
            15 => "TR°",
            // breval-lint: allow(L009) -- pair codes are built from the enum match above; other values impossible
            _ => unreachable!("invalid topo pair code {code}"),
        }
    }

    /// The topological class label of a link (`S-TR`, `TR°`, `H-T1`, …).
    /// Pairs are ordered H, S, T1, TR (the paper's convention).
    #[must_use]
    pub fn topo_class(&self, link: Link) -> String {
        Self::topo_pair_label(self.topo_pair_id(link)).to_string()
    }

    /// `true` if both endpoints classify as transit (the `TR°` links the
    /// heatmaps drill into).
    #[must_use]
    pub fn is_tr_tr(&self, link: Link) -> bool {
        self.node_class(link.a()) == TopoClass::TR && self.node_class(link.b()) == TopoClass::TR
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::Rel;
    use asregistry::iana::BlockAuthority;
    use asregistry::IanaAsnTable;

    fn region_map() -> RegionMap {
        let mut iana = IanaAsnTable::new();
        iana.push_block(1, 1000, BlockAuthority::Rir(RirRegion::Arin))
            .expect("non-overlapping block");
        iana.push_block(1001, 2000, BlockAuthority::Rir(RirRegion::Lacnic))
            .expect("non-overlapping block");
        iana.push_block(2001, 3000, BlockAuthority::Rir(RirRegion::RipeNcc))
            .expect("non-overlapping block");
        RegionMap::from_iana(iana)
    }

    fn classifier() -> LinkClassifier {
        let mut g = AsGraph::new();
        // 1 (T1) provides to 10 (TR) provides to 100 (S); 500 is H.
        g.add_rel(
            Link::new(Asn(1), Asn(10)).expect("distinct endpoints"),
            Rel::P2c { provider: Asn(1) },
        )
        .expect("fresh link accepts rel");
        g.add_rel(
            Link::new(Asn(10), Asn(100)).expect("distinct endpoints"),
            Rel::P2c { provider: Asn(10) },
        )
        .expect("fresh link accepts rel");
        g.add_rel(
            Link::new(Asn(10), Asn(500)).expect("distinct endpoints"),
            Rel::P2p,
        )
        .expect("fresh link accepts rel");
        LinkClassifier::new(
            region_map(),
            &g,
            [Asn(1)].into_iter().collect(),
            [Asn(500)].into_iter().collect(),
        )
    }

    #[test]
    fn region_labels_match_paper_convention() {
        assert_eq!(
            RegionClass::of(RirRegion::RipeNcc, RirRegion::RipeNcc).label(),
            "R°"
        );
        assert_eq!(
            RegionClass::of(RirRegion::RipeNcc, RirRegion::Arin).label(),
            "AR-R"
        );
        assert_eq!(
            RegionClass::of(RirRegion::Lacnic, RirRegion::Arin).label(),
            "AR-L"
        );
        assert_eq!(
            RegionClass::of(RirRegion::Apnic, RirRegion::Afrinic).label(),
            "AF-AP"
        );
        // Symmetric.
        assert_eq!(
            RegionClass::of(RirRegion::Arin, RirRegion::Lacnic),
            RegionClass::of(RirRegion::Lacnic, RirRegion::Arin)
        );
    }

    #[test]
    fn link_region_classes() {
        let c = classifier();
        assert_eq!(
            c.region_class(Link::new(Asn(5), Asn(900)).expect("distinct endpoints"))
                .expect("both endpoints have regions")
                .label(),
            "AR°"
        );
        assert_eq!(
            c.region_class(Link::new(Asn(5), Asn(1500)).expect("distinct endpoints"))
                .expect("both endpoints have regions")
                .label(),
            "AR-L"
        );
        // Unmapped / reserved endpoints yield None.
        assert!(c
            .region_class(Link::new(Asn(5), Asn(9999)).expect("distinct endpoints"))
            .is_none());
        assert!(c
            .region_class(Link::new(Asn(5), Asn(64512)).expect("distinct endpoints"))
            .is_none());
    }

    #[test]
    fn node_classes_follow_lists_and_cones() {
        let c = classifier();
        assert_eq!(c.node_class(Asn(1)), TopoClass::T1);
        assert_eq!(c.node_class(Asn(10)), TopoClass::TR);
        assert_eq!(c.node_class(Asn(100)), TopoClass::S);
        assert_eq!(c.node_class(Asn(500)), TopoClass::H);
        // Unknown AS defaults to stub.
        assert_eq!(c.node_class(Asn(777)), TopoClass::S);
    }

    #[test]
    fn topo_labels_match_paper_convention() {
        let c = classifier();
        assert_eq!(
            c.topo_class(Link::new(Asn(10), Asn(100)).expect("distinct endpoints")),
            "S-TR"
        );
        assert_eq!(
            c.topo_class(Link::new(Asn(1), Asn(10)).expect("distinct endpoints")),
            "T1-TR"
        );
        assert_eq!(
            c.topo_class(Link::new(Asn(1), Asn(100)).expect("distinct endpoints")),
            "S-T1"
        );
        assert_eq!(
            c.topo_class(Link::new(Asn(500), Asn(10)).expect("distinct endpoints")),
            "H-TR"
        );
        assert_eq!(
            c.topo_class(Link::new(Asn(500), Asn(100)).expect("distinct endpoints")),
            "H-S"
        );
        assert_eq!(
            c.topo_class(Link::new(Asn(500), Asn(1)).expect("distinct endpoints")),
            "H-T1"
        );
        assert_eq!(
            c.topo_class(Link::new(Asn(100), Asn(101)).expect("distinct endpoints")),
            "S°"
        );
        assert!(!c.is_tr_tr(Link::new(Asn(10), Asn(11)).expect("distinct endpoints")));
    }
}
