//! §7 — exploiting the ecosystem's continuous change.
//!
//! The paper's outlook: if we know how long relationships stay unchanged, the
//! same AS can be *re-sampled* after a while, multiplying the effective
//! validation data. This module quantifies that on the simulation: evolve the
//! topology month over month, recompile the best-effort validation at each
//! snapshot, and track (a) how fast old labels go stale (the §3.2 problem)
//! and (b) how much *extra* validation the union over time provides compared
//! to any single snapshot (the §7 opportunity).

use crate::cleaning::{clean, CleaningConfig};
use asgraph::Link;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use topogen::{ChurnConfig, Topology};
use valdata::{LabelSource, ValDataConfig};

/// Timeline experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineConfig {
    /// Number of evolution steps (months).
    pub steps: usize,
    /// The churn process.
    pub churn: ChurnConfig,
    /// Validation compilation settings (re-used per snapshot).
    pub valdata: ValDataConfig,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            steps: 12,
            churn: ChurnConfig::default(),
            valdata: ValDataConfig::default(),
        }
    }
}

/// One snapshot of the timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Step index (0 = the base snapshot).
    pub step: usize,
    /// Links changed relative to the base topology (added + removed +
    /// relationship-changed).
    pub drifted_links: usize,
    /// Clean validated links in this snapshot alone.
    pub validated_links: usize,
    /// Fraction of the *base* snapshot's labels still correct against this
    /// snapshot's ground truth (staleness curve).
    pub base_label_survival: f64,
    /// Unique links validated by the union of snapshots `0..=step`.
    pub cumulative_validated: usize,
}

/// Runs the timeline experiment.
#[must_use]
pub fn run_timeline(base: &Topology, cfg: &TimelineConfig) -> Vec<TimelinePoint> {
    let (snapshots, _) = topogen::evolve_steps(base, &cfg.churn, cfg.steps);
    let cleaning = CleaningConfig::default();

    let mut points = Vec::with_capacity(snapshots.len());
    let mut base_labels: BTreeMap<Link, asgraph::Rel> = BTreeMap::new();
    let mut cumulative: BTreeSet<Link> = BTreeSet::new();

    for (step, topo) in snapshots.iter().enumerate() {
        let snapshot = bgpsim::simulate(topo);
        let raw = valdata::compile_communities(topo, &snapshot, &cfg.valdata);
        let org = topo.as2org();
        let cleaned = clean(&raw.only_source(LabelSource::Communities), &org, &cleaning);
        if step == 0 {
            base_labels = cleaned.labels.clone();
        }
        cumulative.extend(cleaned.labels.keys().copied());

        // Staleness: a base label survives if the link still exists and its
        // ground-truth observable labels still include the recorded one.
        let surviving = base_labels
            .iter()
            .filter(|(link, rel)| {
                topo.gt_rel(**link)
                    .map(|gt| gt.observable_labels().contains(rel))
                    .unwrap_or(false)
            })
            .count();
        let drifted = base
            .links
            .iter()
            .filter(|(l, r)| topo.links.get(l).map(|r2| r2 != *r).unwrap_or(true))
            .count()
            + topo
                .links
                .keys()
                .filter(|l| !base.links.contains_key(l))
                .count();

        points.push(TimelinePoint {
            step,
            drifted_links: drifted,
            validated_links: cleaned.len(),
            base_label_survival: surviving as f64 / base_labels.len().max(1) as f64,
            cumulative_validated: cumulative.len(),
        });
    }
    points
}

/// Renders the timeline table.
#[must_use]
pub fn render_timeline(points: &[TimelinePoint]) -> String {
    let mut out = String::from("# Validation over time (§7: staleness vs re-sampling gain)\n");
    let _ = writeln!(
        out,
        "{:>4} {:>9} {:>11} {:>15} {:>12}",
        "step", "drifted", "validated", "base-survival", "cumulative"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>4} {:>9} {:>11} {:>15.3} {:>12}",
            p.step,
            p.drifted_links,
            p.validated_links,
            p.base_label_survival,
            p.cumulative_validated
        );
    }
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        let gain = last.cumulative_validated as f64 / first.validated_links.max(1) as f64;
        let _ = writeln!(
            out,
            "re-sampling gain over {} steps: {:.2}× unique validated links; base labels decayed to {:.1}%",
            last.step,
            gain,
            100.0 * last.base_label_survival
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_decays_and_union_grows() {
        let base = topogen::generate(&topogen::TopologyConfig::small(13));
        let cfg = TimelineConfig {
            steps: 4,
            ..TimelineConfig::default()
        };
        let points = run_timeline(&base, &cfg);
        assert_eq!(points.len(), 5);
        assert!((points[0].base_label_survival - 1.0).abs() < 1e-9);
        // Monotone: drift accumulates, survival decays, the union grows.
        for w in points.windows(2) {
            assert!(w[1].drifted_links >= w[0].drifted_links);
            assert!(w[1].base_label_survival <= w[0].base_label_survival + 1e-9);
            assert!(w[1].cumulative_validated >= w[0].cumulative_validated);
        }
        // Churn must actually bite within a few steps.
        assert!(points.last().unwrap().base_label_survival < 1.0);
        // The union provides more coverage than the base snapshot alone.
        assert!(
            points.last().unwrap().cumulative_validated > points[0].validated_links,
            "re-sampling gain should be positive"
        );
    }

    #[test]
    fn rendering_mentions_gain() {
        let base = topogen::generate(&topogen::TopologyConfig::small(13));
        let cfg = TimelineConfig {
            steps: 2,
            ..TimelineConfig::default()
        };
        let text = render_timeline(&run_timeline(&base, &cfg));
        assert!(text.contains("re-sampling gain"));
    }
}
