//! §4.2 — label quality & treatment.
//!
//! The raw validation set contains entries that must be removed or handled
//! carefully before any evaluation:
//!
//! * **spurious labels** — relationships formed with `AS_TRANS` (23456) or
//!   IANA-reserved ASNs (the paper found 15 and 112 of these, respectively);
//! * **ambiguous labels** — links with multiple distinct labels (hybrid
//!   relationships); the paper shows the treatment choice silently differed
//!   between prior works, so all three observed policies are implemented;
//! * **sibling labels** — links between ASes of the same organisation
//!   (AS2Org), which should be excluded unless explicitly handled.

use asgraph::{Link, Rel, RelClass};
use asregistry::As2Org;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use valdata::ValidationSet;

/// How to treat links carrying multiple distinct labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AmbiguousPolicy {
    /// Drop them (the paper's recommendation: "should be ignored for
    /// validation unless the algorithm explicitly handles them").
    Ignore,
    /// Treat as P2P if the *first* label is P2P, else P2C — reproduces the
    /// TopoScope paper's counts (§4.2).
    P2pIfFirstP2p,
    /// Always treat as P2C — reproduces ProbLink's counts (§4.2).
    AlwaysP2c,
}

/// Cleaning configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningConfig {
    /// Multi-label policy.
    pub ambiguous: AmbiguousPolicy,
    /// Remove links between same-organisation ASes.
    pub drop_siblings: bool,
}

impl Default for CleaningConfig {
    fn default() -> Self {
        CleaningConfig {
            ambiguous: AmbiguousPolicy::Ignore,
            drop_siblings: true,
        }
    }
}

/// What was removed, and why — the §4.2 census.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningReport {
    /// Links in the raw set.
    pub raw_links: usize,
    /// Links dropped for involving `AS_TRANS`.
    pub as_trans_dropped: usize,
    /// Links dropped for involving other reserved ASNs.
    pub reserved_dropped: usize,
    /// Links with multiple distinct labels encountered.
    pub ambiguous_found: usize,
    /// Ambiguous links dropped (policy [`AmbiguousPolicy::Ignore`]).
    pub ambiguous_dropped: usize,
    /// Sibling links dropped via AS2Org.
    pub sibling_dropped: usize,
    /// Links that carried at least one S2S-labelled record.
    pub s2s_label_dropped: usize,
    /// Links dropped because *all* their labels were S2S.
    pub s2s_only_dropped: usize,
    /// Links remaining after cleaning.
    pub clean_links: usize,
}

/// The cleaned validation data: exactly one label per link.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanValidation {
    /// Per-link label.
    pub labels: BTreeMap<Link, Rel>,
    /// The census.
    pub report: CleaningReport,
}

impl CleanValidation {
    /// Number of validated links.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if no labels survived.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label for `link`.
    #[must_use]
    pub fn label(&self, link: Link) -> Option<Rel> {
        self.labels.get(&link).copied()
    }

    /// Label counts per class.
    #[must_use]
    pub fn class_counts(&self) -> BTreeMap<RelClass, usize> {
        let mut out = BTreeMap::new();
        for rel in self.labels.values() {
            *out.entry(rel.class()).or_insert(0) += 1;
        }
        out
    }
}

/// Runs the §4.2 cleaning pipeline.
#[must_use]
pub fn clean(set: &ValidationSet, org: &As2Org, cfg: &CleaningConfig) -> CleanValidation {
    let _span = breval_obs::span!("clean_validation");
    let mut report = CleaningReport {
        raw_links: set.len(),
        ..Default::default()
    };
    let mut labels = BTreeMap::new();

    for (link, records) in &set.entries {
        // Spurious endpoints.
        if link.a().is_as_trans() || link.b().is_as_trans() {
            report.as_trans_dropped += 1;
            continue;
        }
        if link.involves_reserved() {
            report.reserved_dropped += 1;
            continue;
        }
        // Siblings (AS2Org).
        if cfg.drop_siblings && org.is_sibling_link(*link) {
            report.sibling_dropped += 1;
            continue;
        }
        // Distinct labels on this link, in insertion order.
        let mut distinct: Vec<Rel> = Vec::new();
        for r in records {
            if !distinct.contains(&r.rel) {
                distinct.push(r.rel);
            }
        }
        // Drop S2S records (handled by the sibling mechanism, not labels).
        let s2s_count = distinct
            .iter()
            .filter(|r| r.class() == RelClass::S2s)
            .count();
        if s2s_count > 0 {
            report.s2s_label_dropped += 1;
        }
        distinct.retain(|r| r.class() != RelClass::S2s);
        let chosen = match distinct.len() {
            0 => {
                report.s2s_only_dropped += 1;
                None
            }
            // breval-lint: allow(L009) -- the len() == 1 match arm guarantees one element
            1 => Some(distinct[0]),
            _ => {
                report.ambiguous_found += 1;
                match cfg.ambiguous {
                    AmbiguousPolicy::Ignore => {
                        report.ambiguous_dropped += 1;
                        None
                    }
                    AmbiguousPolicy::P2pIfFirstP2p => {
                        // breval-lint: allow(L009) -- the wildcard arm runs only when distinct.len() >= 2
                        Some(if distinct[0].class() == RelClass::P2p {
                            Rel::P2p
                        } else {
                            // breval-lint: allow(L009) -- the wildcard arm runs only when distinct.len() >= 2
                            first_p2c(&distinct).unwrap_or(distinct[0])
                        })
                    }
                    // breval-lint: allow(L009) -- the wildcard arm runs only when distinct.len() >= 2
                    AmbiguousPolicy::AlwaysP2c => Some(first_p2c(&distinct).unwrap_or(distinct[0])),
                }
            }
        };
        if let Some(rel) = chosen {
            labels.insert(*link, rel);
        }
    }
    report.clean_links = labels.len();
    breval_obs::counter("validation_labels_cleaned", labels.len() as u64);
    breval_obs::counter(
        "validation_labels_dropped",
        (report.raw_links - labels.len()) as u64,
    );
    CleanValidation { labels, report }
}

fn first_p2c(rels: &[Rel]) -> Option<Rel> {
    rels.iter().find(|r| r.class() == RelClass::P2c).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::Asn;
    use asregistry::org::OrgId;
    use valdata::LabelSource;

    fn link(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).unwrap()
    }

    fn p2c(p: u32) -> Rel {
        Rel::P2c { provider: Asn(p) }
    }

    fn sample_set() -> ValidationSet {
        let mut v = ValidationSet::new();
        v.add(link(1, 2), Rel::P2p, LabelSource::Communities);
        v.add(link(23456, 9), p2c(9), LabelSource::Communities); // AS_TRANS
        v.add(link(64512, 9), p2c(9), LabelSource::Communities); // reserved
        v.add(link(3, 4), Rel::P2p, LabelSource::Communities); // ambiguous:
        v.add(link(3, 4), p2c(3), LabelSource::Communities); //   P2P first
        v.add(link(5, 6), p2c(5), LabelSource::Communities); // ambiguous:
        v.add(link(5, 6), Rel::P2p, LabelSource::Communities); //   P2C first
        v.add(link(7, 8), Rel::S2s, LabelSource::Rpsl); // sibling label only
        v.add(link(10, 11), p2c(10), LabelSource::Communities); // sibling link
        v
    }

    fn org_with_siblings() -> As2Org {
        let mut org = As2Org::new();
        org.assign(Asn(10), OrgId("@fam".into()));
        org.assign(Asn(11), OrgId("@fam".into()));
        org
    }

    #[test]
    fn drops_spurious_and_siblings() {
        let clean = clean(
            &sample_set(),
            &org_with_siblings(),
            &CleaningConfig::default(),
        );
        let r = &clean.report;
        assert_eq!(r.raw_links, 7);
        assert_eq!(r.as_trans_dropped, 1);
        assert_eq!(r.reserved_dropped, 1);
        assert_eq!(r.sibling_dropped, 1);
        assert_eq!(r.ambiguous_found, 2);
        assert_eq!(r.ambiguous_dropped, 2);
        assert_eq!(r.s2s_label_dropped, 1);
        // Surviving: link(1,2) only (7,8 lost its only label).
        assert_eq!(clean.len(), 1);
        assert_eq!(clean.label(link(1, 2)), Some(Rel::P2p));
        assert_eq!(r.clean_links, 1);
    }

    #[test]
    fn ambiguous_policy_p2p_if_first() {
        let cfg = CleaningConfig {
            ambiguous: AmbiguousPolicy::P2pIfFirstP2p,
            drop_siblings: true,
        };
        let clean = clean(&sample_set(), &org_with_siblings(), &cfg);
        assert_eq!(clean.label(link(3, 4)), Some(Rel::P2p));
        assert_eq!(clean.label(link(5, 6)), Some(p2c(5)));
    }

    #[test]
    fn ambiguous_policy_always_p2c() {
        let cfg = CleaningConfig {
            ambiguous: AmbiguousPolicy::AlwaysP2c,
            drop_siblings: true,
        };
        let clean = clean(&sample_set(), &org_with_siblings(), &cfg);
        assert_eq!(clean.label(link(3, 4)), Some(p2c(3)));
        assert_eq!(clean.label(link(5, 6)), Some(p2c(5)));
    }

    #[test]
    fn keeping_siblings_is_possible() {
        let cfg = CleaningConfig {
            ambiguous: AmbiguousPolicy::Ignore,
            drop_siblings: false,
        };
        let clean = clean(&sample_set(), &org_with_siblings(), &cfg);
        assert_eq!(clean.label(link(10, 11)), Some(p2c(10)));
        assert_eq!(clean.report.sibling_dropped, 0);
    }

    #[test]
    fn empty_set_is_fine() {
        let clean = clean(
            &ValidationSet::new(),
            &As2Org::new(),
            &CleaningConfig::default(),
        );
        assert!(clean.is_empty());
        assert_eq!(clean.report.raw_links, 0);
    }
}
