//! Appendix C — the twelve per-link metrics the paper proposes for finding
//! further groups of "hard links".
//!
//! All metrics are computed from *observable* data (the collector snapshot
//! plus the PeeringDB-style IXP list and the MANRS/serial-hijacker behaviour
//! lists), exactly as a future bias analysis would compute them:
//!
//!  1. visibility — distinct vantage points observing the link (the per-
//!     snapshot building block of "visibility over time"),
//!  2. prefixes redistributed via the link,
//!  3. addresses covered by those prefixes,
//!  4. prefixes *originated* through the link (link adjacent to the origin),
//!  5. addresses covered by those,
//!  6. ASes observed collector-side ("left") of the link,
//!  7. ASes observed origin-side ("right") of the link,
//!  8. relative transit-degree difference of the endpoints,
//!  9. relative PPDC-size difference of the endpoints,
//! 10. common IXPs of the endpoints,
//! 11. common private facilities — **not modelled**; the simulation has no
//!     facility substrate, so this is reported as 0 for every link and noted
//!     in DESIGN.md,
//! 12. behaviour of the endpoints (MANRS members vs serial hijackers).

use asgraph::{Asn, ConeSizes, Link, PathStats};
use bgpsim::RibSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use topogen::Topology;

/// The Appendix C feature vector for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkMetrics {
    /// (1) Distinct vantage points observing the link.
    pub visibility: usize,
    /// (2) Distinct prefixes whose routes cross the link.
    pub prefixes_redistributed: usize,
    /// (3) Addresses covered by those prefixes.
    pub addresses_redistributed: u64,
    /// (4) Distinct prefixes originated directly across the link.
    pub prefixes_originated: usize,
    /// (5) Addresses covered by those prefixes.
    pub addresses_originated: u64,
    /// (6) Distinct ASes observed collector-side of the link.
    pub left_ases: usize,
    /// (7) Distinct ASes observed origin-side of the link.
    pub right_ases: usize,
    /// (8) |td(a) − td(b)| / max(td(a), td(b), 1).
    pub transit_degree_diff: f64,
    /// (9) |ppdc(a) − ppdc(b)| / max(ppdc(a), ppdc(b), 1).
    pub ppdc_diff: f64,
    /// (10) IXPs where both endpoints are members.
    pub common_ixps: usize,
    /// (11) Common private facilities — not modelled, always 0.
    pub common_facilities: usize,
    /// (12) Endpoints that are MANRS participants (0–2).
    pub manrs_endpoints: u8,
    /// (12) Endpoints flagged as serial hijackers (0–2).
    pub hijacker_endpoints: u8,
}

/// Computes the Appendix C metrics for every observed link.
///
/// `ppdc` supplies the per-AS PPDC cone sizes used for feature 9
/// ([`asgraph::cone::ppdc_sizes`] over the inferred relationships — the
/// paper would use the inferred relationships). Passed in precomputed so
/// callers share one derivation with the rest of the pipeline.
#[must_use]
pub fn compute_link_metrics(
    topology: &Topology,
    snapshot: &RibSnapshot,
    stats: &PathStats,
    ppdc: &ConeSizes,
) -> BTreeMap<Link, LinkMetrics> {
    struct Acc {
        vps: HashSet<Asn>,
        prefixes: HashSet<bgpwire::Ipv4Prefix>,
        originated: HashSet<bgpwire::Ipv4Prefix>,
        left: HashSet<Asn>,
        right: HashSet<Asn>,
    }
    // Link-keyed BTreeMap so the returned metric table (and everything
    // rendered from it) iterates in deterministic Link order (L008).
    let mut acc: BTreeMap<Link, Acc> = BTreeMap::new();

    for obs in &snapshot.observations {
        let mut hops = obs.path.clone();
        hops.dedup();
        for (i, w) in hops.windows(2).enumerate() {
            let Some(link) = Link::new(w[0], w[1]) else {
                continue;
            };
            let entry = acc.entry(link).or_insert_with(|| Acc {
                vps: HashSet::new(),
                prefixes: HashSet::new(),
                originated: HashSet::new(),
                left: HashSet::new(),
                right: HashSet::new(),
            });
            entry.vps.insert(obs.vp);
            entry.prefixes.insert(obs.prefix);
            if i + 2 == hops.len() {
                entry.originated.insert(obs.prefix);
            }
            for &l in &hops[..=i] {
                entry.left.insert(l);
            }
            for &r in &hops[i + 1..] {
                entry.right.insert(r);
            }
        }
    }

    let rel_diff = |a: usize, b: usize| -> f64 {
        let (a, b) = (a as f64, b as f64);
        (a - b).abs() / a.max(b).max(1.0)
    };

    acc.into_iter()
        .map(|(link, a)| {
            let (x, y) = link.endpoints();
            let common_ixps = topology
                .ixps
                .iter()
                .filter(|ixp| ixp.members.contains(&x) && ixp.members.contains(&y))
                .count();
            let flag = |f: fn(&topogen::AsInfo) -> bool| -> u8 {
                [x, y]
                    .into_iter()
                    .filter(|asn| topology.info(*asn).map(f).unwrap_or(false))
                    .count() as u8
            };
            let metrics = LinkMetrics {
                visibility: a.vps.len(),
                prefixes_redistributed: a.prefixes.len(),
                addresses_redistributed: a.prefixes.iter().map(|p| p.address_count()).sum(),
                prefixes_originated: a.originated.len(),
                addresses_originated: a.originated.iter().map(|p| p.address_count()).sum(),
                left_ases: a.left.len().saturating_sub(1),
                right_ases: a.right.len().saturating_sub(1),
                transit_degree_diff: rel_diff(stats.transit_degree(x), stats.transit_degree(y)),
                ppdc_diff: rel_diff(ppdc.get(x).unwrap_or(1), ppdc.get(y).unwrap_or(1)),
                common_ixps,
                common_facilities: 0,
                manrs_endpoints: flag(|i| i.manrs),
                hijacker_endpoints: flag(|i| i.hijacker),
            };
            (link, metrics)
        })
        .collect()
}

/// One row of the feature-vs-error analysis: links bucketed by a feature's
/// value, with the misclassification rate per bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureErrorRow {
    /// Feature name.
    pub feature: &'static str,
    /// Bucket label (e.g. `"q1 (low)"`).
    pub bucket: String,
    /// Scored links in the bucket.
    pub links: usize,
    /// Fraction misclassified (class-level).
    pub error_rate: f64,
}

/// Buckets scored links into quartiles of a feature and reports the error
/// rate per quartile — the analysis the paper's Appendix C proposes.
#[must_use]
pub fn error_by_feature_quartile(
    scored: &[crate::metrics::ScoredLink],
    metrics: &BTreeMap<Link, LinkMetrics>,
    feature: &'static str,
    value: impl Fn(&LinkMetrics) -> f64,
) -> Vec<FeatureErrorRow> {
    let mut pairs: Vec<(f64, bool)> = scored
        .iter()
        .filter_map(|s| {
            metrics
                .get(&s.link)
                .map(|m| (value(m), s.validation.class() != s.inferred.class()))
        })
        .collect();
    if pairs.is_empty() {
        return Vec::new();
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let n = pairs.len();
    let labels = ["q1 (low)", "q2", "q3", "q4 (high)"];
    (0..4)
        .map(|q| {
            let lo = q * n / 4;
            let hi = ((q + 1) * n / 4).max(lo + 1).min(n);
            let slice = &pairs[lo..hi.max(lo)];
            let errors = slice.iter().filter(|(_, wrong)| *wrong).count();
            FeatureErrorRow {
                feature,
                bucket: labels[q].to_owned(),
                links: slice.len(),
                error_rate: errors as f64 / slice.len().max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ScoredLink;
    use asgraph::{cone, Rel, RelClass};

    fn world() -> (Topology, RibSnapshot) {
        let topo = topogen::generate(&topogen::TopologyConfig::small(77));
        let snap = bgpsim::simulate(&topo);
        (topo, snap)
    }

    #[test]
    fn metrics_cover_all_observed_links() {
        let (topo, snap) = world();
        let paths = snap.to_pathset(false).sanitized();
        let stats = paths.stats();
        let rels: BTreeMap<Link, Rel> = topo.links.iter().map(|(l, r)| (*l, r.base)).collect();
        let ppdc = cone::ppdc_sizes(&paths, &rels);
        let metrics = compute_link_metrics(&topo, &snap, &stats, &ppdc);
        // Every observed link gets a metric row.
        for link in stats.links().iter().take(500) {
            assert!(metrics.contains_key(link), "{link} missing");
        }
        // Invariants.
        for (link, m) in metrics.iter().take(2000) {
            assert!(m.visibility >= 1, "{link}: zero visibility");
            assert!(m.prefixes_redistributed >= m.prefixes_originated);
            assert!(m.addresses_redistributed >= m.addresses_originated);
            assert!(
                m.transit_degree_diff >= 0.0 && m.transit_degree_diff <= 1.0,
                "{link}: td diff {}",
                m.transit_degree_diff
            );
            assert!(m.ppdc_diff >= 0.0 && m.ppdc_diff <= 1.0);
            assert!(m.manrs_endpoints <= 2 && m.hijacker_endpoints <= 2);
            assert_eq!(m.common_facilities, 0);
        }
    }

    #[test]
    fn ixp_comembership_is_detected() {
        let (topo, snap) = world();
        let paths = snap.to_pathset(false).sanitized();
        let stats = paths.stats();
        let rels: BTreeMap<Link, Rel> = topo.links.iter().map(|(l, r)| (*l, r.base)).collect();
        let ppdc = cone::ppdc_sizes(&paths, &rels);
        let metrics = compute_link_metrics(&topo, &snap, &stats, &ppdc);
        assert!(!topo.ixps.is_empty(), "generator must emit IXPs");
        // Some observed link connects two co-members of an IXP.
        let some_comember = metrics.values().any(|m| m.common_ixps > 0);
        assert!(some_comember, "no link with common IXPs found");
    }

    #[test]
    fn quartile_analysis_brackets_all_links() {
        let (topo, snap) = world();
        let paths = snap.to_pathset(false).sanitized();
        let stats = paths.stats();
        let rels: BTreeMap<Link, Rel> = topo.links.iter().map(|(l, r)| (*l, r.base)).collect();
        let ppdc = cone::ppdc_sizes(&paths, &rels);
        let metrics = compute_link_metrics(&topo, &snap, &stats, &ppdc);
        // Score ground truth against itself with a few synthetic errors.
        let scored: Vec<ScoredLink> = stats
            .links()
            .iter()
            .enumerate()
            .filter_map(|(i, link)| {
                let gt = topo.gt_rel(*link)?.base;
                if gt.class() == RelClass::S2s {
                    return None;
                }
                let inferred = if i % 10 == 0 {
                    match gt.class() {
                        RelClass::P2p => Rel::P2c { provider: link.a() },
                        _ => Rel::P2p,
                    }
                } else {
                    gt
                };
                Some(ScoredLink {
                    link: *link,
                    validation: gt,
                    inferred,
                })
            })
            .collect();
        let rows =
            error_by_feature_quartile(&scored, &metrics, "visibility", |m| m.visibility as f64);
        assert_eq!(rows.len(), 4);
        let total: usize = rows.iter().map(|r| r.links).sum();
        assert_eq!(total, scored.len());
        for r in &rows {
            assert!(r.error_rate >= 0.0 && r.error_rate <= 1.0);
        }
    }
}
