//! Figs. 1–2 — per-class link share vs validation coverage.

use asgraph::Link;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One bar pair of Fig. 1 / Fig. 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassCoverage {
    /// Class label (`R°`, `S-TR`, …).
    pub class: String,
    /// Links of this class among the inferred links.
    pub inferred_links: usize,
    /// Fraction of all (classified) inferred links in this class.
    pub share: f64,
    /// Inferred links of this class that carry a validation label.
    pub validated_links: usize,
    /// Validation coverage of this class.
    pub coverage: f64,
}

/// Base links per parallel work item. The effective chunk is
/// `breval_par::input_scaled_chunk(len, LINK_CHUNK)` — a function of the
/// link count only (never the thread count), so the chunk boundaries are
/// identical at any thread count while the per-chunk maps stay bounded at
/// million-link scale.
const LINK_CHUNK: usize = 512;

/// Computes per-class shares and coverage.
///
/// * `inferred` — the inferred link set (the topology snapshot under study),
/// * `validated` — links carrying cleaned validation labels,
/// * `class_of` — class assignment; links mapping to `None` are discarded
///   (reserved endpoints, §5).
///
/// Convenience wrapper over [`coverage_by_class_keyed`] for callers whose
/// classes are already label strings.
#[must_use]
pub fn coverage_by_class<F>(
    inferred: &BTreeSet<Link>,
    validated: &BTreeSet<Link>,
    class_of: F,
) -> Vec<ClassCoverage>
where
    F: Fn(Link) -> Option<String> + Sync,
{
    coverage_by_class_keyed(inferred, validated, class_of, |c| c.clone())
}

/// [`coverage_by_class`] over an arbitrary compact key type.
///
/// The hot loop aggregates on `C` (e.g. a `Copy` enum or a dense `u8` pair
/// code) and only materialises label strings once per *class* via `label_of`
/// at the very end — the serialization boundary. `label_of` must be
/// injective over the keys actually produced; rows are sorted by
/// (share desc, label asc) *after* labelling, so the output is byte-identical
/// to the string-keyed form.
///
/// Classification is sharded across the worker pool in fixed-size link
/// chunks; per-chunk class counts are merged by summation, which is
/// order-independent, so the output is byte-identical at any thread count.
///
/// Returns rows sorted by descending share, as the figures are.
#[must_use]
pub fn coverage_by_class_keyed<C, F, L>(
    inferred: &BTreeSet<Link>,
    validated: &BTreeSet<Link>,
    class_of: F,
    label_of: L,
) -> Vec<ClassCoverage>
where
    C: Ord + Send,
    F: Fn(Link) -> Option<C> + Sync,
    L: Fn(&C) -> String,
{
    let _span = breval_obs::span!("coverage_by_class");
    let links: Vec<Link> = inferred.iter().copied().collect();
    let link_chunk = breval_par::input_scaled_chunk(links.len(), LINK_CHUNK);
    let chunks = links.len().div_ceil(link_chunk);
    let partials = breval_par::parallel_map(chunks, |c| {
        let lo = c * link_chunk;
        let hi = (lo + link_chunk).min(links.len());
        let mut per_class: BTreeMap<C, (usize, usize)> = BTreeMap::new();
        let mut classified = 0usize;
        for link in &links[lo..hi] {
            let Some(class) = class_of(*link) else {
                continue;
            };
            classified += 1;
            let entry = per_class.entry(class).or_insert((0, 0));
            entry.0 += 1;
            if validated.contains(link) {
                entry.1 += 1;
            }
        }
        (per_class, classified)
    });
    let mut per_class: BTreeMap<C, (usize, usize)> = BTreeMap::new();
    let mut classified_total = 0usize;
    for (partial, classified) in partials {
        classified_total += classified;
        for (class, (links, validated)) in partial {
            let entry = per_class.entry(class).or_insert((0, 0));
            entry.0 += links;
            entry.1 += validated;
        }
    }
    breval_obs::counter("coverage_links_classified", classified_total as u64);
    let mut rows: Vec<ClassCoverage> = per_class
        .into_iter()
        .map(|(class, (links, validated))| ClassCoverage {
            class: label_of(&class),
            inferred_links: links,
            share: links as f64 / classified_total.max(1) as f64,
            validated_links: validated,
            coverage: validated as f64 / links.max(1) as f64,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.share
            .partial_cmp(&a.share)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.class.cmp(&b.class))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::Asn;

    fn link(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).unwrap()
    }

    #[test]
    fn shares_and_coverage() {
        let inferred: BTreeSet<Link> = [link(1, 2), link(1, 3), link(2, 3), link(10, 11)]
            .into_iter()
            .collect();
        let validated: BTreeSet<Link> = [link(1, 2), link(10, 11)].into_iter().collect();
        // Class: "low" for links among 1-3, "high" for 10+.
        let rows = coverage_by_class(&inferred, &validated, |l| {
            Some(if l.a().0 < 10 {
                "low".into()
            } else {
                "high".into()
            })
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].class, "low");
        assert_eq!(rows[0].inferred_links, 3);
        assert!((rows[0].share - 0.75).abs() < 1e-12);
        assert!((rows[0].coverage - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(rows[1].class, "high");
        assert!((rows[1].coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unclassified_links_are_excluded_from_totals() {
        let inferred: BTreeSet<Link> = [link(1, 2), link(5, 6)].into_iter().collect();
        let validated: BTreeSet<Link> = BTreeSet::new();
        let rows = coverage_by_class(&inferred, &validated, |l| {
            (l.a().0 == 1).then(|| "x".to_string())
        });
        assert_eq!(rows.len(), 1);
        assert!(
            (rows[0].share - 1.0).abs() < 1e-12,
            "share over classified only"
        );
    }

    #[test]
    fn empty_inputs() {
        let rows = coverage_by_class(&BTreeSet::new(), &BTreeSet::new(), |_| Some("x".into()));
        assert!(rows.is_empty());
    }
}
