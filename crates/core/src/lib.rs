//! # breval-core — how biased is our validation (data)?
//!
//! The paper's analysis pipeline over the simulated world:
//!
//! * [`cleaning`] — §4.2 label-quality census and cleaning (spurious
//!   `AS_TRANS`/reserved entries, ambiguous multi-label treatment, sibling
//!   removal via AS2Org).
//! * [`classes`] — §5 link classes: regional (via the IANA + delegation-file
//!   region map) and topological (Stub/Transit refined by Tier-1 and
//!   hypergiant lists over inferred customer cones).
//! * [`coverage`] — Figs. 1–2: per-class link share vs validation coverage.
//! * [`heatmap`] — Figs. 3, 7–9: 2D binned link distributions (transit
//!   degree, PPDC customer cone, node degree).
//! * [`metrics`] — confusion matrices, PPV/TPR/F1/balanced accuracy, MCC and
//!   Fowlkes–Mallows; per-class evaluation tables (Tables 1–3).
//! * [`sampling`] — Appendix A: sub-sampling robustness (Figs. 4–6).
//! * [`linkfeatures`] — Appendix C: the twelve proposed per-link metrics.
//! * [`hardlinks`] — §3.3: Jin et al.'s hard-link criteria and the
//!   validation-skew measurement.
//! * [`timeline`] — §7: validation staleness vs the re-sampling gain under
//!   topology churn.
//! * [`casestudy`] — §6.1: the Cogent partial-transit forensics.
//! * [`sanitize`] — domain-invariant checks (graph well-formedness, P2C
//!   acyclicity, path hygiene, valley-free sanity, validation ⊆ inferred,
//!   class-partition completeness) asserted at stage boundaries in debug
//!   builds and standalone via `cargo run -p xtask -- sanitize`.
//! * [`snapshot`] — per-classifier immutable analysis snapshots (CSR graph,
//!   cones, PPDC bitsets, scored-link join) shared behind `Arc`s, plus the
//!   validated flat binary format that reloads them in milliseconds.
//! * [`pipeline`] — one-call scenario driver wiring all substrate crates.
//! * [`report`] — text/CSV renderers for every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casestudy;
pub mod classes;
pub mod cleaning;
pub mod coverage;
pub mod hardlinks;
pub mod heatmap;
pub mod linkfeatures;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod sampling;
pub mod sanitize;
pub mod snapshot;
pub mod timeline;

pub use classes::{LinkClassifier, RegionClass, TopoClass, TopoIndex};
pub use cleaning::{AmbiguousPolicy, CleanValidation, CleaningConfig, CleaningReport};
pub use coverage::{coverage_by_class, coverage_by_class_keyed, ClassCoverage};
pub use heatmap::{Heatmap, HeatmapConfig};
pub use metrics::{ClassEval, ConfusionMatrix, EvalTable};
pub use pipeline::{Scenario, ScenarioConfig};
pub use snapshot::{ScenarioSnapshot, SnapshotError, SnapshotKey};
