//! Text and CSV renderers for every table and figure.

use crate::casestudy::CaseStudyReport;
use crate::cleaning::CleaningReport;
use crate::coverage::ClassCoverage;
use crate::heatmap::Heatmap;
use crate::metrics::EvalTable;
use crate::sampling::SamplePoint;
use std::fmt::Write as _;

/// Renders a Fig. 1 / Fig. 2-style coverage table (share row + coverage row).
#[must_use]
pub fn render_coverage(rows: &[ClassCoverage], title: &str) -> String {
    let mut out = format!("# {title}\n");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>8} {:>12} {:>10}",
        "class", "links", "share", "validated", "coverage"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>8.2} {:>12} {:>10.2}",
            r.class, r.inferred_links, r.share, r.validated_links, r.coverage
        );
    }
    out
}

/// CSV form of a coverage figure.
#[must_use]
pub fn coverage_csv(rows: &[ClassCoverage]) -> String {
    let mut out = String::from("class,links,share,validated,coverage\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{:.4},{},{:.4}",
            r.class, r.inferred_links, r.share, r.validated_links, r.coverage
        );
    }
    out
}

/// The paper's colour thresholds relative to the `Total°` row: `↑` ≥ +1 %,
/// `↓`/`↓↓`/`↓↓↓` for ≥ 1 / 5 / 10 % drops, blank otherwise.
fn marker(value: f64, total: f64) -> &'static str {
    let d = value - total;
    if d >= 0.01 {
        "↑"
    } else if d <= -0.10 {
        "↓↓↓"
    } else if d <= -0.05 {
        "↓↓"
    } else if d <= -0.01 {
        "↓"
    } else {
        ""
    }
}

/// Renders a Tables 1–3-style per-class evaluation table.
#[must_use]
pub fn render_eval_table(table: &EvalTable) -> String {
    let mut out = format!("# Per-group validation table for {}\n", table.classifier);
    let _ = writeln!(
        out,
        "{:<8} {:>7}{:<3} {:>7}{:<3} {:>7} {:>7}{:<3} {:>7}{:<3} {:>7} {:>7}{:<3}",
        "Class", "PPV_P", "", "TPR_P", "", "LC_P", "PPV_C", "", "TPR_C", "", "LC_C", "MCC", ""
    );
    let t = &table.total;
    let render_row = |out: &mut String, label: &str, e: &crate::metrics::ClassEval| {
        let _ = writeln!(
            out,
            "{:<8} {:>7.3}{:<3} {:>7.3}{:<3} {:>7} {:>7.3}{:<3} {:>7.3}{:<3} {:>7} {:>7.3}{:<3}",
            label,
            e.p2p.ppv(),
            marker(e.p2p.ppv(), t.p2p.ppv()),
            e.p2p.tpr(),
            marker(e.p2p.tpr(), t.p2p.tpr()),
            e.lc_p,
            e.p2c.ppv(),
            marker(e.p2c.ppv(), t.p2c.ppv()),
            e.p2c.tpr(),
            marker(e.p2c.tpr(), t.p2c.tpr()),
            e.lc_c,
            e.mcc,
            marker(e.mcc, t.mcc),
        );
    };
    render_row(&mut out, "Total°", t);
    for (label, eval) in &table.rows {
        render_row(&mut out, label, eval);
    }
    out
}

/// CSV form of an evaluation table.
#[must_use]
pub fn eval_csv(table: &EvalTable) -> String {
    let mut out =
        String::from("class,ppv_p,tpr_p,lc_p,ppv_c,tpr_c,lc_c,mcc,fm,orientation_errors\n");
    let mut row = |label: &str, e: &crate::metrics::ClassEval| {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{},{:.4},{:.4},{},{:.4},{:.4},{}",
            label,
            e.p2p.ppv(),
            e.p2p.tpr(),
            e.lc_p,
            e.p2c.ppv(),
            e.p2c.tpr(),
            e.lc_c,
            e.mcc,
            e.fm,
            e.orientation_errors
        );
    };
    row("Total°", &table.total);
    for (label, eval) in &table.rows {
        row(label, eval);
    }
    out
}

/// Renders an inference-vs-validation heatmap pair as aligned ASCII grids.
#[must_use]
pub fn render_heatmap_pair(inferred: &Heatmap, validated: &Heatmap, title: &str) -> String {
    let mut out = format!(
        "# {title}\n# inferred: {} links | validated: {} links | TV distance: {:.3}\n",
        inferred.links,
        validated.links,
        inferred.tv_distance(validated)
    );
    let shade = |v: f64| -> char {
        match v {
            v if v >= 0.12 => '█',
            v if v >= 0.08 => '▓',
            v if v >= 0.04 => '▒',
            v if v >= 0.005 => '░',
            v if v > 0.0 => '·',
            _ => ' ',
        }
    };
    let _ = writeln!(out, "  inference (rows: smaller metric ↑, cols: larger →)");
    for row in inferred.cells.iter().rev() {
        let line: String = row.iter().map(|v| shade(*v)).collect();
        let _ = writeln!(out, "  |{line}|");
    }
    let _ = writeln!(out, "  validation");
    for row in validated.cells.iter().rev() {
        let line: String = row.iter().map(|v| shade(*v)).collect();
        let _ = writeln!(out, "  |{line}|");
    }
    let _ = writeln!(
        out,
        "  bottom-left mass: inferred {:.2}, validated {:.2}",
        inferred.bottom_left_mass(),
        validated.bottom_left_mass()
    );
    out
}

/// CSV form of one heatmap (`y,x,fraction` triples).
#[must_use]
pub fn heatmap_csv(hm: &Heatmap) -> String {
    let mut out = String::from("y_bin,x_bin,fraction\n");
    for (y, row) in hm.cells.iter().enumerate() {
        for (x, v) in row.iter().enumerate() {
            let _ = writeln!(out, "{y},{x},{v:.6}");
        }
    }
    out
}

/// Renders the Appendix A sweep (Figs. 4–6) as a table.
#[must_use]
pub fn render_sampling(points: &[SamplePoint], class: &str) -> String {
    let mut out = format!("# Sampling sweep for class {class} (median [q1, q3])\n");
    let _ = writeln!(
        out,
        "{:>4}  {:>22}  {:>22}  {:>22}",
        "%", "PPV_P", "TPR_P", "MCC"
    );
    for p in points {
        let f = |m: &crate::sampling::MetricSpread| {
            format!("{:.3} [{:.3}, {:.3}]", m.median, m.q1, m.q3)
        };
        let _ = writeln!(
            out,
            "{:>4}  {:>22}  {:>22}  {:>22}",
            p.percent,
            f(&p.ppv_p),
            f(&p.tpr_p),
            f(&p.mcc)
        );
    }
    out
}

/// CSV form of the sampling sweep.
#[must_use]
pub fn sampling_csv(points: &[SamplePoint]) -> String {
    let mut out = String::from(
        "percent,ppv_p_median,ppv_p_q1,ppv_p_q3,tpr_p_median,tpr_p_q1,tpr_p_q3,mcc_median,mcc_q1,mcc_q3\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            p.percent,
            p.ppv_p.median,
            p.ppv_p.q1,
            p.ppv_p.q3,
            p.tpr_p.median,
            p.tpr_p.q1,
            p.tpr_p.q3,
            p.mcc.median,
            p.mcc.q1,
            p.mcc.q3
        );
    }
    out
}

/// Renders the §4.2 cleaning census.
#[must_use]
pub fn render_cleaning(report: &CleaningReport) -> String {
    let mut out = String::from("# Label quality & treatment (§4.2)\n");
    let _ = writeln!(out, "raw validated links:        {}", report.raw_links);
    let _ = writeln!(
        out,
        "AS_TRANS entries dropped:   {}",
        report.as_trans_dropped
    );
    let _ = writeln!(
        out,
        "reserved-ASN entries:       {}",
        report.reserved_dropped
    );
    let _ = writeln!(
        out,
        "multi-label (ambiguous):    {}",
        report.ambiguous_found
    );
    let _ = writeln!(
        out,
        "  dropped by policy:        {}",
        report.ambiguous_dropped
    );
    let _ = writeln!(
        out,
        "sibling links dropped:      {}",
        report.sibling_dropped
    );
    let _ = writeln!(
        out,
        "S2S-labelled entries:       {}",
        report.s2s_label_dropped
    );
    let _ = writeln!(out, "clean links remaining:      {}", report.clean_links);
    out
}

/// Renders the §3.3 hard-link report.
#[must_use]
pub fn render_hard_links(report: &crate::hardlinks::HardLinkReport) -> String {
    let mut out = String::from("# Hard links (§3.3, after Jin et al.)\n");
    let _ = writeln!(
        out,
        "hard links: {}/{} ({:.1}%)",
        report.hard_links,
        report.total_links,
        100.0 * report.hard_links as f64 / report.total_links.max(1) as f64
    );
    let _ = writeln!(
        out,
        "validation coverage: hard {:.3} vs easy {:.3}",
        report.hard_coverage, report.easy_coverage
    );
    let _ = writeln!(
        out,
        "classifier error rate: hard {:.3} vs easy {:.3}",
        report.hard_error_rate, report.easy_error_rate
    );
    let _ = writeln!(out, "per criterion (observed → validated):");
    for (name, observed, validated) in &report.per_criterion {
        let _ = writeln!(
            out,
            "  {name:<26} {observed:>7} → {validated:>6} ({:.3})",
            *validated as f64 / (*observed).max(1) as f64
        );
    }
    out
}

/// Renders Appendix C feature-vs-error quartile rows.
#[must_use]
pub fn render_feature_errors(rows: &[crate::linkfeatures::FeatureErrorRow]) -> String {
    let mut out = String::from("# Error rate by feature quartile (Appendix C)\n");
    let _ = writeln!(
        out,
        "{:<26} {:<10} {:>8} {:>10}",
        "feature", "bucket", "links", "error"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<26} {:<10} {:>8} {:>10.3}",
            r.feature, r.bucket, r.links, r.error_rate
        );
    }
    out
}

/// Renders the §6.1 case study.
#[must_use]
pub fn render_case_study(report: &CaseStudyReport) -> String {
    let mut out = String::from("# Case study: wrongly-inferred-P2P T1-TR links (§6.1)\n");
    let _ = writeln!(out, "total target links: {}", report.total_targets);
    let _ = writeln!(out, "per Tier-1:");
    for (asn, n) in &report.per_tier1 {
        let focus = if *asn == report.focus {
            "  ← focus"
        } else {
            ""
        };
        let _ = writeln!(out, "  {asn}: {n}{focus}");
    }
    let zero_triplets = report
        .findings
        .iter()
        .filter(|f| f.clique_triplets == 0)
        .count();
    let _ = writeln!(
        out,
        "focus {}: {}/{} target links have NO clique|T1|X triplet",
        report.focus,
        zero_triplets,
        report.findings.len()
    );
    let _ = writeln!(
        out,
        "looking-glass verdicts: {} partial transit (…:990 tagged), {} inaccurate validation",
        report.partial_transit, report.inaccurate_validation
    );
    for f in report.findings.iter().take(20) {
        let _ = writeln!(
            out,
            "  {}: triplets={} reason={:?}",
            f.link, f.clique_triplets, f.reason
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{ClassEval, ScoredLink};
    use asgraph::{Asn, Link, Rel};

    fn sample_eval() -> EvalTable {
        let scored: Vec<ScoredLink> = (0..100)
            .map(|i| ScoredLink {
                link: Link::new(Asn(i + 1), Asn(i + 1000)).unwrap(),
                validation: if i % 3 == 0 {
                    Rel::P2p
                } else {
                    Rel::P2c {
                        provider: Asn(i + 1),
                    }
                },
                inferred: if i % 9 == 0 {
                    Rel::P2c {
                        provider: Asn(i + 1),
                    }
                } else if i % 3 == 0 {
                    Rel::P2p
                } else {
                    Rel::P2c {
                        provider: Asn(i + 1),
                    }
                },
            })
            .collect();
        EvalTable {
            classifier: "test".into(),
            total: ClassEval::evaluate("Total°", &scored),
            rows: [("X".to_string(), ClassEval::evaluate("X", &scored))]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn eval_render_contains_columns() {
        let text = render_eval_table(&sample_eval());
        assert!(text.contains("PPV_P"));
        assert!(text.contains("Total°"));
        assert!(text.contains("MCC"));
        let csv = eval_csv(&sample_eval());
        assert!(csv.lines().count() >= 3);
        assert!(csv.starts_with("class,"));
    }

    #[test]
    fn markers_follow_thresholds() {
        assert_eq!(marker(0.95, 0.90), "↑");
        assert_eq!(marker(0.90, 0.90), "");
        assert_eq!(marker(0.88, 0.90), "↓");
        assert_eq!(marker(0.84, 0.90), "↓↓");
        assert_eq!(marker(0.75, 0.90), "↓↓↓");
    }

    #[test]
    fn coverage_render() {
        let rows = vec![ClassCoverage {
            class: "R°".into(),
            inferred_links: 100,
            share: 0.39,
            validated_links: 15,
            coverage: 0.15,
        }];
        let text = render_coverage(&rows, "Fig 1");
        assert!(text.contains("R°"));
        let csv = coverage_csv(&rows);
        assert!(csv.contains("R°,100,0.3900,15,0.1500"));
    }

    #[test]
    fn heatmap_render() {
        let cfg = crate::heatmap::HeatmapConfig {
            x_bins: 3,
            y_bins: 3,
            x_max: 30,
            y_max: 30,
        };
        let links = [Link::new(Asn(1), Asn(2)).unwrap()];
        let hm = Heatmap::build(links.iter(), |a| a.0 as usize, cfg);
        let text = render_heatmap_pair(&hm, &hm, "Fig 3");
        assert!(text.contains("TV distance: 0.000"));
        let csv = heatmap_csv(&hm);
        assert_eq!(csv.lines().count(), 10); // header + 9 cells
    }
}
