//! Figs. 3 and 7–9 — 2D binned link distributions.
//!
//! For transit-transit (`TR°`) links, bin each link by a per-AS metric of its
//! two endpoints — (smaller, larger) — and compare the mass distribution of
//! *inferred* links against *validated* links. The top row / right column
//! clamp everything beyond the axis limits, exactly as the paper's figures do
//! ("the row above 150 … catch all transit degree equal or larger").

use asgraph::{Asn, Link};
use serde::{Deserialize, Serialize};

/// Heatmap axes configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeatmapConfig {
    /// Number of bins along the larger-metric (x) axis.
    pub x_bins: usize,
    /// Number of bins along the smaller-metric (y) axis.
    pub y_bins: usize,
    /// Clamp limit for the larger metric (values ≥ go to the last column).
    pub x_max: usize,
    /// Clamp limit for the smaller metric.
    pub y_max: usize,
}

impl HeatmapConfig {
    /// Fig. 3's axes: transit degree, 1500 × 150, 10×10 bins.
    #[must_use]
    pub fn transit_degree() -> Self {
        HeatmapConfig {
            x_bins: 10,
            y_bins: 10,
            x_max: 1500,
            y_max: 150,
        }
    }

    /// Figs. 7–8's axes: PPDC cone size, 750 × 45.
    #[must_use]
    pub fn ppdc() -> Self {
        HeatmapConfig {
            x_bins: 10,
            y_bins: 10,
            x_max: 750,
            y_max: 45,
        }
    }

    /// Fig. 9's axes: node degree, 1500 × 150.
    #[must_use]
    pub fn node_degree() -> Self {
        HeatmapConfig {
            x_bins: 10,
            y_bins: 10,
            x_max: 1500,
            y_max: 150,
        }
    }

    /// A defensively usable copy: every dimension clamped to at least 1.
    /// Zero bins would underflow the clamp index (`bins - 1`) and zero max
    /// would divide by zero in [`bin`]; a degenerate axis collapses to a
    /// single catch-all bin instead of panicking.
    #[must_use]
    pub fn sanitized(self) -> Self {
        HeatmapConfig {
            x_bins: self.x_bins.max(1),
            y_bins: self.y_bins.max(1),
            x_max: self.x_max.max(1),
            y_max: self.y_max.max(1),
        }
    }
}

/// A normalised 2D histogram of links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Configuration used.
    pub config: HeatmapConfig,
    /// `cells[y][x]` = fraction of links in that bin (rows: smaller metric).
    pub cells: Vec<Vec<f64>>,
    /// Number of links binned.
    pub links: usize,
}

/// Base links per parallel work item in [`Heatmap::build`]. The effective
/// chunk is `breval_par::input_scaled_chunk(len, LINK_CHUNK)` — a function
/// of the link count only (never the thread count), so chunk boundaries are
/// thread-count invariant while the per-chunk bin buffers stay bounded at
/// million-link scale.
const LINK_CHUNK: usize = 512;

impl Heatmap {
    /// Builds a heatmap over `links`, reading each endpoint's metric through
    /// `metric`. The config is [`HeatmapConfig::sanitized`] first, so
    /// degenerate axes (zero bins / zero max) yield a 1-bin catch-all axis
    /// instead of panicking; the stored `config` is the sanitized one.
    ///
    /// Binning is sharded across the worker pool in fixed-size link chunks;
    /// per-chunk bin counts are merged by summation (order-independent), so
    /// the result is byte-identical at any thread count.
    #[must_use]
    pub fn build<'a, I, F>(links: I, metric: F, config: HeatmapConfig) -> Self
    where
        I: IntoIterator<Item = &'a Link>,
        F: Fn(Asn) -> usize + Sync,
    {
        let _span = breval_obs::span!("heatmap_build");
        let config = config.sanitized();
        let links: Vec<Link> = links.into_iter().copied().collect();
        let link_chunk = breval_par::input_scaled_chunk(links.len(), LINK_CHUNK);
        let chunks = links.len().div_ceil(link_chunk);
        // Per-chunk counts are one flat row-major array (y * x_bins + x)
        // instead of a Vec-of-Vecs: one allocation per chunk.
        let partials = breval_par::parallel_map(chunks, |c| {
            let lo = c * link_chunk;
            let hi = (lo + link_chunk).min(links.len());
            let mut counts = vec![0usize; config.x_bins * config.y_bins];
            for link in &links[lo..hi] {
                let (ma, mb) = (metric(link.a()), metric(link.b()));
                let (small, large) = (ma.min(mb), ma.max(mb));
                let x = bin(large, config.x_max, config.x_bins);
                let y = bin(small, config.y_max, config.y_bins);
                counts[y * config.x_bins + x] += 1;
            }
            counts
        });
        let mut counts = vec![0usize; config.x_bins * config.y_bins];
        for partial in partials {
            for (cell, pcell) in counts.iter_mut().zip(partial) {
                *cell += pcell;
            }
        }
        let total = links.len();
        breval_obs::counter("heatmap_links_binned", total as u64);
        let cells = counts
            .chunks(config.x_bins)
            .map(|row| {
                row.iter()
                    .map(|&c| c as f64 / total.max(1) as f64)
                    .collect()
            })
            .collect();
        Heatmap {
            config,
            cells,
            links: total,
        }
    }

    /// The fraction of mass in the lowest-left quadrant (both metrics in the
    /// bottom 30 % of their axes) — the paper's "vast majority of TR° links
    /// are between relatively small transit ASes" summary statistic.
    #[must_use]
    pub fn bottom_left_mass(&self) -> f64 {
        let yq = (self.config.y_bins as f64 * 0.3).ceil() as usize;
        let xq = (self.config.x_bins as f64 * 0.3).ceil() as usize;
        self.cells
            .iter()
            .take(yq)
            .flat_map(|row| row.iter().take(xq))
            .sum()
    }

    /// Total variation distance to another heatmap with the same shape
    /// (0 = identical distributions, 1 = disjoint).
    #[must_use]
    pub fn tv_distance(&self, other: &Heatmap) -> f64 {
        let mut d = 0.0;
        for (ra, rb) in self.cells.iter().zip(&other.cells) {
            for (a, b) in ra.iter().zip(rb) {
                d += (a - b).abs();
            }
        }
        d / 2.0
    }
}

/// Maps `value` into `0..bins`. Values `>= max` clamp into the last bin —
/// including the degenerate `max = 0` axis, where every value clamps.
/// `bins = 0` saturates to bin 0 rather than underflowing (callers go
/// through [`HeatmapConfig::sanitized`], so both degeneracies are belt-and-
/// braces here). The product is widened to 128 bits so a pathological
/// metric near `usize::MAX` cannot overflow `value * bins`.
fn bin(value: usize, max: usize, bins: usize) -> usize {
    let last = bins.saturating_sub(1);
    if value >= max {
        return last;
    }
    // value < max, so value * bins / max < bins; the cast cannot truncate.
    let idx = (value as u128 * bins as u128) / max.max(1) as u128;
    (idx as usize).min(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).unwrap()
    }

    #[test]
    fn bins_clamp_and_normalise() {
        let cfg = HeatmapConfig {
            x_bins: 4,
            y_bins: 4,
            x_max: 40,
            y_max: 40,
        };
        // Metric = ASN value.
        let links = [link(5, 15), link(5, 100), link(39, 390)];
        let hm = Heatmap::build(links.iter(), |a| a.0 as usize, cfg);
        assert_eq!(hm.links, 3);
        let sum: f64 = hm.cells.iter().flatten().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // link(5, 100): larger=100 clamps to last column, smaller=5 → bin 0.
        assert!(hm.cells[0][3] > 0.0);
    }

    #[test]
    fn scaled_chunks_stay_thread_invariant_past_the_base() {
        // Enough links that `input_scaled_chunk` grows past the 512 base
        // (140k / 256 = 546): the scaled chunking must still bin exactly
        // like the 1-thread run — the chunk size is a function of the input
        // length only, so boundaries cannot move with the thread count.
        let cfg = HeatmapConfig {
            x_bins: 7,
            y_bins: 5,
            x_max: 5_000,
            y_max: 900,
        };
        let links: Vec<Link> = (0..140_000u32)
            .map(|i| link(i * 2 + 1, i * 2 + 2))
            .collect();
        let metric = |a: Asn| (a.0 as usize).wrapping_mul(37) % 7_001;
        let one =
            breval_par::with_thread_cap(Some(1), || Heatmap::build(links.iter(), metric, cfg));
        let four =
            breval_par::with_thread_cap(Some(4), || Heatmap::build(links.iter(), metric, cfg));
        assert_eq!(one, four);
        assert_eq!(one.links, 140_000);
    }

    #[test]
    fn bottom_left_mass_detects_concentration() {
        let cfg = HeatmapConfig {
            x_bins: 10,
            y_bins: 10,
            x_max: 100,
            y_max: 100,
        };
        let small: Vec<Link> = (0..20).map(|i| link(2 + i, 30 + i)).collect();
        let hm_small = Heatmap::build(small.iter(), |a| (a.0 % 10) as usize, cfg);
        assert!(hm_small.bottom_left_mass() > 0.9);
    }

    #[test]
    fn tv_distance_zero_for_identical() {
        let cfg = HeatmapConfig {
            x_bins: 3,
            y_bins: 3,
            x_max: 30,
            y_max: 30,
        };
        let links = [link(1, 2), link(5, 25)];
        let a = Heatmap::build(links.iter(), |x| x.0 as usize, cfg);
        let b = Heatmap::build(links.iter(), |x| x.0 as usize, cfg);
        assert_eq!(a.tv_distance(&b), 0.0);
        // Disjoint distributions → distance 1.
        let c = Heatmap::build([link(29, 299)].iter(), |x| x.0 as usize, cfg);
        assert!(a.tv_distance(&c) > 0.49);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let hm = Heatmap::build(std::iter::empty(), |_| 0, HeatmapConfig::transit_degree());
        assert_eq!(hm.links, 0);
        assert!(hm.cells.iter().flatten().all(|c| *c == 0.0));
    }

    #[test]
    fn zero_bins_config_collapses_instead_of_panicking() {
        let cfg = HeatmapConfig {
            x_bins: 0,
            y_bins: 0,
            x_max: 100,
            y_max: 100,
        };
        let links = [link(1, 2), link(5, 25)];
        let hm = Heatmap::build(links.iter(), |a| a.0 as usize, cfg);
        // Sanitization collapses each zero-bin axis to one catch-all bin.
        assert_eq!((hm.config.x_bins, hm.config.y_bins), (1, 1));
        assert_eq!(hm.cells.len(), 1);
        assert_eq!(hm.cells[0].len(), 1);
        assert!((hm.cells[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_max_config_clamps_everything_to_the_last_bin() {
        let cfg = HeatmapConfig {
            x_bins: 4,
            y_bins: 4,
            x_max: 0,
            y_max: 0,
        };
        let links = [link(1, 2), link(5, 25), link(7, 9)];
        let hm = Heatmap::build(links.iter(), |a| a.0 as usize, cfg);
        // max sanitizes to 1, so every metric >= 1 lands in the top bin;
        // no divide-by-zero either way.
        assert_eq!(hm.links, 3);
        let sum: f64 = hm.cells.iter().flatten().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((hm.cells[3][3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn huge_metric_values_do_not_overflow_binning() {
        let cfg = HeatmapConfig {
            x_bins: 10,
            y_bins: 10,
            x_max: usize::MAX,
            y_max: usize::MAX,
        };
        let links = [link(1, 2)];
        // value * bins would overflow usize; the widened arithmetic must
        // still place usize::MAX - 1 in the top decile.
        let hm = Heatmap::build(links.iter(), |_| usize::MAX - 1, cfg);
        assert!((hm.cells[9][9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_is_total_and_in_range() {
        for (value, max, bins) in [
            (0, 0, 0),
            (5, 0, 4),
            (5, 10, 0),
            (usize::MAX, usize::MAX, usize::MAX),
            (usize::MAX - 1, usize::MAX, 10),
            (3, 10, 10),
        ] {
            let b = bin(value, max, bins);
            assert!(b <= bins.saturating_sub(1), "bin({value},{max},{bins})={b}");
        }
        assert_eq!(bin(3, 10, 10), 3);
        assert_eq!(bin(9, 10, 10), 9);
        assert_eq!(bin(10, 10, 10), 9);
    }
}
