//! Classification-correctness metrics (§6).
//!
//! For each link class the paper reports precision (`PPV`) and recall (`TPR`)
//! twice — once with P2P as the positive class, once with P2C — plus the link
//! counts and Matthews correlation coefficient. We reproduce exactly those
//! columns (and additionally F1, balanced accuracy and the Fowlkes–Mallows
//! index, which the paper mentions but does not tabulate).

use asgraph::{Link, Rel, RelClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Total classified items.
    #[must_use]
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision (positive predictive value). 0 when undefined.
    #[must_use]
    pub fn ppv(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Recall (true positive rate). 0 when undefined.
    #[must_use]
    pub fn tpr(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// F1 score. 0 when undefined.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.ppv(), self.tpr());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Balanced accuracy. 0 when undefined.
    #[must_use]
    pub fn balanced_accuracy(&self) -> f64 {
        let tnr_d = self.tn + self.fp;
        let tnr = if tnr_d == 0 {
            0.0
        } else {
            self.tn as f64 / tnr_d as f64
        };
        (self.tpr() + tnr) / 2.0
    }

    /// Matthews correlation coefficient in [-1, 1]; 0 when the denominator
    /// vanishes (the Chicco et al. convention the paper follows).
    #[must_use]
    pub fn mcc(&self) -> f64 {
        let (tp, fp, tn, fn_) = (
            self.tp as f64,
            self.fp as f64,
            self.tn as f64,
            self.fn_ as f64,
        );
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fn_) / denom
        }
    }

    /// Fowlkes–Mallows index (geometric mean of PPV and TPR).
    #[must_use]
    pub fn fowlkes_mallows(&self) -> f64 {
        (self.ppv() * self.tpr()).sqrt()
    }
}

/// One (validation label, inferred label) pair for a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoredLink {
    /// The link.
    pub link: Link,
    /// The cleaned validation label.
    pub validation: Rel,
    /// The inferred label.
    pub inferred: Rel,
}

/// Builds the binary confusion matrix treating `positive` as the positive
/// relationship class (orientation-collapsed; orientation errors are counted
/// separately in [`ClassEval`]).
#[must_use]
pub fn confusion(scored: &[ScoredLink], positive: RelClass) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::default();
    for s in scored {
        let val_pos = s.validation.class() == positive;
        let inf_pos = s.inferred.class() == positive;
        match (val_pos, inf_pos) {
            (true, true) => m.tp += 1,
            (false, true) => m.fp += 1,
            (true, false) => m.fn_ += 1,
            (false, false) => m.tn += 1,
        }
    }
    m
}

/// The evaluation of one link class — one row of Tables 1–3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassEval {
    /// Class label (e.g. `"T1-TR"`, `"AR-L"`, `"Total°"`).
    pub class: String,
    /// Confusion matrix with P2P positive.
    pub p2p: ConfusionMatrix,
    /// Confusion matrix with P2C positive.
    pub p2c: ConfusionMatrix,
    /// Number of validated-P2P links in the class (`LC_P`).
    pub lc_p: usize,
    /// Number of validated-P2C links in the class (`LC_C`).
    pub lc_c: usize,
    /// P2C links whose class matched but whose orientation was inverted.
    pub orientation_errors: usize,
    /// Matthews correlation coefficient.
    pub mcc: f64,
    /// Fowlkes–Mallows index.
    pub fm: f64,
}

impl ClassEval {
    /// Evaluates one class's scored links.
    #[must_use]
    pub fn evaluate(class: impl Into<String>, scored: &[ScoredLink]) -> Self {
        let p2p = confusion(scored, RelClass::P2p);
        let p2c = confusion(scored, RelClass::P2c);
        let orientation_errors = scored
            .iter()
            .filter(|s| {
                s.validation.class() == RelClass::P2c
                    && s.inferred.class() == RelClass::P2c
                    && s.validation != s.inferred
            })
            .count();
        let lc_p = scored
            .iter()
            .filter(|s| s.validation.class() == RelClass::P2p)
            .count();
        let lc_c = scored
            .iter()
            .filter(|s| s.validation.class() == RelClass::P2c)
            .count();
        ClassEval {
            class: class.into(),
            p2p,
            p2c,
            lc_p,
            lc_c,
            orientation_errors,
            mcc: p2p.mcc(),
            fm: p2p.fowlkes_mallows(),
        }
    }
}

/// A full per-class evaluation table for one classifier (Tables 1–3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalTable {
    /// Classifier name.
    pub classifier: String,
    /// The `Total°` row.
    pub total: ClassEval,
    /// Per-class rows, keyed by class label.
    pub rows: BTreeMap<String, ClassEval>,
}

impl EvalTable {
    /// Builds a table from scored links and a class-assignment function. Only
    /// classes with at least `min_links` scored links get a row (the paper
    /// uses 500).
    #[must_use]
    pub fn build<F>(
        classifier: impl Into<String>,
        scored: &[ScoredLink],
        class_of: F,
        min_links: usize,
    ) -> Self
    where
        F: Fn(Link) -> Option<String>,
    {
        let mut per_class: BTreeMap<String, Vec<ScoredLink>> = BTreeMap::new();
        for s in scored {
            if let Some(class) = class_of(s.link) {
                per_class.entry(class).or_default().push(*s);
            }
        }
        let rows = per_class
            .into_iter()
            .filter(|(_, links)| links.len() >= min_links)
            .map(|(class, links)| {
                let eval = ClassEval::evaluate(class.clone(), &links);
                (class, eval)
            })
            .collect();
        EvalTable {
            classifier: classifier.into(),
            total: ClassEval::evaluate("Total°", scored),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::Asn;

    fn link(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).unwrap()
    }

    fn scored(val: Rel, inf: Rel) -> ScoredLink {
        ScoredLink {
            link: link(1, 2),
            validation: val,
            inferred: inf,
        }
    }

    const P2P: Rel = Rel::P2p;
    fn p2c(p: u32) -> Rel {
        Rel::P2c { provider: Asn(p) }
    }

    #[test]
    fn confusion_hand_computed() {
        let s = vec![
            scored(P2P, P2P),       // TP (p2p positive)
            scored(P2P, p2c(1)),    // FN
            scored(p2c(1), P2P),    // FP
            scored(p2c(1), p2c(1)), // TN
            scored(p2c(1), p2c(1)), // TN
        ];
        let m = confusion(&s, RelClass::P2p);
        assert_eq!(
            m,
            ConfusionMatrix {
                tp: 1,
                fp: 1,
                tn: 2,
                fn_: 1
            }
        );
        assert!((m.ppv() - 0.5).abs() < 1e-12);
        assert!((m.tpr() - 0.5).abs() < 1e-12);
        // Swapping positive class transposes roles.
        let mc = confusion(&s, RelClass::P2c);
        assert_eq!(mc.tp, 2);
        assert_eq!(mc.fp, 1);
        assert_eq!(mc.fn_, 1);
        assert_eq!(mc.tn, 1);
    }

    #[test]
    fn mcc_bounds_and_symmetry() {
        // Perfect classification.
        let m = ConfusionMatrix {
            tp: 10,
            fp: 0,
            tn: 10,
            fn_: 0,
        };
        assert!((m.mcc() - 1.0).abs() < 1e-12);
        // Perfectly wrong.
        let m = ConfusionMatrix {
            tp: 0,
            fp: 10,
            tn: 0,
            fn_: 10,
        };
        assert!((m.mcc() + 1.0).abs() < 1e-12);
        // Coin toss.
        let m = ConfusionMatrix {
            tp: 5,
            fp: 5,
            tn: 5,
            fn_: 5,
        };
        assert!(m.mcc().abs() < 1e-12);
        // Degenerate: all one class → 0 by convention.
        let m = ConfusionMatrix {
            tp: 10,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        assert_eq!(m.mcc(), 0.0);
    }

    #[test]
    fn mcc_positive_class_invariant() {
        // MCC must be identical for either choice of positive class.
        let s = vec![
            scored(P2P, P2P),
            scored(P2P, p2c(1)),
            scored(p2c(1), P2P),
            scored(p2c(1), p2c(1)),
            scored(p2c(1), p2c(1)),
            scored(P2P, P2P),
        ];
        let mp = confusion(&s, RelClass::P2p).mcc();
        let mc = confusion(&s, RelClass::P2c).mcc();
        assert!((mp - mc).abs() < 1e-12);
    }

    #[test]
    fn f1_and_friends() {
        let m = ConfusionMatrix {
            tp: 8,
            fp: 2,
            tn: 7,
            fn_: 3,
        };
        assert!((m.f1() - (2.0 * 0.8 * (8.0 / 11.0)) / (0.8 + 8.0 / 11.0)).abs() < 1e-12);
        assert!((m.fowlkes_mallows() - (0.8f64 * (8.0 / 11.0)).sqrt()).abs() < 1e-12);
        assert!(m.balanced_accuracy() > 0.0 && m.balanced_accuracy() <= 1.0);
        assert_eq!(m.total(), 20);
        // Degenerate cases return 0, not NaN.
        let z = ConfusionMatrix::default();
        for v in [z.ppv(), z.tpr(), z.f1(), z.mcc(), z.fowlkes_mallows()] {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn class_eval_counts_orientation_errors() {
        let s = vec![
            scored(p2c(1), p2c(2)), // right class, wrong orientation
            scored(p2c(1), p2c(1)),
            scored(P2P, P2P),
        ];
        let eval = ClassEval::evaluate("X", &s);
        assert_eq!(eval.orientation_errors, 1);
        assert_eq!(eval.lc_c, 2);
        assert_eq!(eval.lc_p, 1);
    }

    #[test]
    fn eval_table_filters_small_classes() {
        let mut scored_links = Vec::new();
        for i in 0..10 {
            scored_links.push(ScoredLink {
                link: link(100 + i, 200 + i),
                validation: P2P,
                inferred: P2P,
            });
        }
        scored_links.push(ScoredLink {
            link: link(1, 2),
            validation: P2P,
            inferred: P2P,
        });
        let table = EvalTable::build(
            "test",
            &scored_links,
            |l| {
                Some(if l.a() == Asn(1) {
                    "tiny".into()
                } else {
                    "big".into()
                })
            },
            5,
        );
        assert!(table.rows.contains_key("big"));
        assert!(!table.rows.contains_key("tiny"));
        assert_eq!(table.total.lc_p, 11);
    }
}
