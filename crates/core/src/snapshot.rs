//! Per-classifier scenario snapshots: one immutable, `Arc`-shared bundle of
//! every dense structure the analysis layer reads — the CSR mirror of the
//! inferred graph, its customer-cone sizes, the PPDC bitset cones, and the
//! scored-link join against the cleaned validation labels.
//!
//! A [`ScenarioSnapshot`] is built **once** per classifier (the CSR and cone
//! sizes eagerly, PPDC and scored links lazily on first use) and shared by
//! the ensemble, coverage, heatmap, and link-feature paths — replacing the
//! three ad-hoc `Mutex<BTreeMap>` caches `Scenario` used to carry and fixing
//! the per-call `CsrGraph::build` rebuild at its root.
//!
//! Snapshots also persist. The on-disk form is the flat typed-array codec of
//! [`asgraph::io`]:
//!
//! ```text
//! "BREVSNAP"  magic                 8 bytes
//! version     u32                   schema version (currently 2)
//! config_hash u64                   FNV-1a over the scenario config JSON
//! seed        u64                   topology seed (redundant, human-facing)
//! name        str                   classifier name ("asrank", …)
//! csr         CsrGraph              indexer + 4 × (offsets, targets)
//! cones       ConeSizes             indexer + u64 sizes
//! ppdc        PpdcCones             indexer + hybrid rows (sparse id lists + dense bitsets)
//! scored      u32[6k]               k × (a, b, val_tag, val_prov, inf_tag, inf_prov)
//! ```
//!
//! Every slice is `u64`-length-prefixed little-endian; loads re-validate all
//! lengths and structural invariants and return [`SnapshotError`] — never a
//! panic, never an attacker-sized allocation. A warm load is a handful of
//! bulk reads, so re-analysing a built scenario costs milliseconds instead
//! of re-running topogen + bgpsim + inference (`BENCH_snap.json` records the
//! ratio).

use crate::metrics::{confusion, ScoredLink};
use crate::pipeline::ScenarioConfig;
use asgraph::io::{ByteReader, ByteWriter, IoError};
use asgraph::{cone, Asn, ConeSizes, CsrGraph, Link, PpdcCones, Rel, RelClass};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Leading magic of every snapshot file.
pub const MAGIC: [u8; 8] = *b"BREVSNAP";
/// On-disk schema version this build writes and accepts. Version 2 switched
/// the PPDC section to the hybrid sparse/dense row layout; version-1 files
/// (flat bitset rows only) are rejected and must be rebuilt from scratch —
/// a cold rebuild, never a silent misparse.
pub const VERSION: u32 = 2;

/// Why a snapshot could not be saved or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The byte stream failed to decode (truncation, bad magic, corrupt
    /// lengths, broken invariants).
    Codec(IoError),
    /// The filesystem said no.
    File(std::io::Error),
    /// The file decoded fine but was built from a different scenario
    /// config, seed, or classifier than the caller asked for.
    KeyMismatch {
        /// The key the caller expected.
        expected: SnapshotKey,
        /// What the file actually holds.
        found: SnapshotKey,
    },
    /// The snapshot is missing a part the caller requires — either a save
    /// was attempted before the lazy parts were forced (which would have
    /// silently persisted empty tables), or a query server asked for a
    /// part that was never materialised.
    Incomplete {
        /// The classifier name of the offending snapshot.
        name: String,
        /// Which part is missing (`"csr"`, `"cone_sizes"`, …).
        part: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Codec(e) => write!(f, "snapshot codec error: {e}"),
            SnapshotError::File(e) => write!(f, "snapshot file error: {e}"),
            SnapshotError::KeyMismatch { expected, found } => write!(
                f,
                "snapshot key mismatch: expected {expected}, file holds {found}"
            ),
            SnapshotError::Incomplete { name, part } => write!(
                f,
                "snapshot '{name}' is incomplete: part '{part}' was never materialised"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<IoError> for SnapshotError {
    fn from(e: IoError) -> Self {
        SnapshotError::Codec(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::File(e)
    }
}

/// What identifies a persisted snapshot: the scenario config (hashed), the
/// topology seed, and the classifier name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotKey {
    /// FNV-1a 64 over the scenario config's JSON serialization.
    pub config_hash: u64,
    /// The topology seed (also inside the hash; kept visible for humans).
    pub seed: u64,
    /// The classifier name (`"asrank"`, `"problink"`, …).
    pub name: String,
}

impl fmt::Display for SnapshotKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}/s{}/{}", self.config_hash, self.seed, self.name)
    }
}

impl SnapshotKey {
    /// The key for `config`'s scenario under classifier `name`.
    #[must_use]
    pub fn of(config: &ScenarioConfig, name: &str) -> Self {
        let json = serde_json::to_string(config).unwrap_or_default();
        SnapshotKey {
            config_hash: fnv1a64(json.as_bytes()),
            seed: config.topology.seed,
            name: name.to_owned(),
        }
    }

    /// The file name a snapshot with this key is stored under.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "snap_{:016x}_s{}_{}.bin",
            self.config_hash, self.seed, self.name
        )
    }
}

/// FNV-1a 64-bit over `bytes` — stable across runs and platforms, unlike
/// `DefaultHasher`, so snapshot file names are reproducible.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The immutable per-classifier analysis bundle (see the module docs).
///
/// Every part is `OnceLock`-lazy — a caller that only needs the scored-link
/// join never pays for a CSR build or bitset cones — and once set, a part is
/// immutable and `Arc`-shared by every reader. `Scenario` materialises parts
/// on first use; loaded snapshots arrive fully materialised.
#[derive(Debug, Default)]
pub struct ScenarioSnapshot {
    name: String,
    pub(crate) csr: OnceLock<Arc<CsrGraph>>,
    pub(crate) cone_sizes: OnceLock<Arc<ConeSizes>>,
    pub(crate) ppdc: OnceLock<Arc<PpdcCones>>,
    pub(crate) ppdc_sizes: OnceLock<Arc<ConeSizes>>,
    pub(crate) scored: OnceLock<Arc<Vec<ScoredLink>>>,
}

impl ScenarioSnapshot {
    /// A snapshot with every part still unset.
    #[must_use]
    pub fn new_lazy(name: impl Into<String>) -> Self {
        ScenarioSnapshot {
            name: name.into(),
            ..ScenarioSnapshot::default()
        }
    }

    /// A snapshot whose graph parts are already built (the ASRank snapshot
    /// is constructed this way alongside the link classifier).
    #[must_use]
    pub fn new(name: impl Into<String>, csr: Arc<CsrGraph>, cone_sizes: Arc<ConeSizes>) -> Self {
        let snap = ScenarioSnapshot::new_lazy(name);
        let _ = snap.csr.set(csr);
        let _ = snap.cone_sizes.set(cone_sizes);
        snap
    }

    /// An empty snapshot — the stand-in for unknown classifier names,
    /// mirroring the empty tables the old per-kind caches handed out.
    #[must_use]
    pub fn empty(name: impl Into<String>) -> Self {
        let snap = ScenarioSnapshot::new(
            name,
            Arc::new(CsrGraph::default()),
            Arc::new(ConeSizes::empty()),
        );
        let _ = snap.ppdc.set(Arc::new(PpdcCones::default()));
        let _ = snap.ppdc_sizes.set(Arc::new(ConeSizes::empty()));
        let _ = snap.scored.set(Arc::new(Vec::new()));
        snap
    }

    /// The classifier this snapshot belongs to.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CSR mirror of the inferred graph, if already materialised.
    #[must_use]
    pub fn csr(&self) -> Option<Arc<CsrGraph>> {
        self.csr.get().map(Arc::clone)
    }

    /// Customer-cone sizes over the inferred graph, if already materialised.
    #[must_use]
    pub fn cone_sizes(&self) -> Option<Arc<ConeSizes>> {
        self.cone_sizes.get().map(Arc::clone)
    }

    /// The PPDC cones, if already materialised.
    #[must_use]
    pub fn ppdc_cones(&self) -> Option<Arc<PpdcCones>> {
        self.ppdc.get().map(Arc::clone)
    }

    /// The PPDC cone sizes, if already materialised.
    #[must_use]
    pub fn ppdc_sizes(&self) -> Option<Arc<ConeSizes>> {
        self.ppdc_sizes.get().map(Arc::clone)
    }

    /// The scored-link join, if already materialised.
    #[must_use]
    pub fn scored(&self) -> Option<Arc<Vec<ScoredLink>>> {
        self.scored.get().map(Arc::clone)
    }

    /// The first persisted part that is still unset, or `None` if the
    /// snapshot is save-complete. `ppdc_sizes` is exempt: it is never
    /// stored (loads rebuild it as a popcount of the PPDC rows).
    #[must_use]
    pub fn missing_part(&self) -> Option<&'static str> {
        if self.csr.get().is_none() {
            Some("csr")
        } else if self.cone_sizes.get().is_none() {
            Some("cone_sizes")
        } else if self.ppdc.get().is_none() {
            Some("ppdc_cones")
        } else if self.scored.get().is_none() {
            Some("scored")
        } else {
            None
        }
    }

    /// Serializes the snapshot under `key`. The lazy parts must be
    /// materialised first (`Scenario::save_snapshot` forces them); missing
    /// parts are written as their empty forms.
    #[must_use]
    pub fn to_bytes(&self, key: &SnapshotKey) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u32(VERSION);
        w.put_u64(key.config_hash);
        w.put_u64(key.seed);
        w.put_str(&self.name);
        match self.csr.get() {
            Some(csr) => asgraph::io::write_csr_graph(&mut w, csr),
            None => asgraph::io::write_csr_graph(&mut w, &CsrGraph::default()),
        }
        match self.cone_sizes.get() {
            Some(c) => asgraph::io::write_cone_sizes(&mut w, c),
            None => asgraph::io::write_cone_sizes(&mut w, &ConeSizes::empty()),
        }
        match self.ppdc.get() {
            Some(p) => asgraph::io::write_ppdc_cones(&mut w, p),
            None => asgraph::io::write_ppdc_cones(&mut w, &PpdcCones::default()),
        }
        match self.scored.get() {
            Some(s) => write_scored(&mut w, s),
            None => write_scored(&mut w, &[]),
        }
        w.into_bytes()
    }

    /// Decodes a snapshot stream, returning the key it was written under
    /// and the fully materialised snapshot. All structural invariants are
    /// re-validated; any failure is an `Err`, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<(SnapshotKey, Self), SnapshotError> {
        let mut r = ByteReader::new(bytes);
        r.expect_bytes(&MAGIC)?;
        let version = r.take_u32()?;
        if version != VERSION {
            return Err(IoError::BadVersion { found: version }.into());
        }
        let config_hash = r.take_u64()?;
        let seed = r.take_u64()?;
        let name = r.take_str()?;
        let csr = asgraph::io::read_csr_graph(&mut r)?;
        let cone_sizes = asgraph::io::read_cone_sizes(&mut r)?;
        let ppdc = asgraph::io::read_ppdc_cones(&mut r)?;
        let scored = read_scored(&mut r)?;
        r.finish()?;
        let key = SnapshotKey {
            config_hash,
            seed,
            name: name.clone(),
        };
        let snap = ScenarioSnapshot::new(name, Arc::new(csr), Arc::new(cone_sizes));
        // PPDC sizes are a pure popcount of the loaded rows — rebuild them
        // rather than trusting (or storing) a redundant copy.
        let _ = snap.ppdc_sizes.set(Arc::new(ppdc.sizes()));
        let _ = snap.ppdc.set(Arc::new(ppdc));
        let _ = snap.scored.set(Arc::new(scored));
        Ok((key, snap))
    }

    /// Writes the snapshot to `dir/<key.file_name()>`, creating `dir` if
    /// needed. Returns the path written. Emits the `snapshot_save` span and
    /// the `snapshot_bytes_written` counter.
    ///
    /// Refuses to persist an incomplete snapshot: `to_bytes` would encode
    /// unset parts as their empty forms, and a warm start from such a file
    /// would silently answer every query from empty tables. Callers must
    /// force the lazy parts first (`Scenario::save_snapshot` does).
    pub fn save(&self, dir: &Path, key: &SnapshotKey) -> Result<PathBuf, SnapshotError> {
        let _span = breval_obs::span!("snapshot_save");
        if let Some(part) = self.missing_part() {
            return Err(SnapshotError::Incomplete {
                name: self.name.clone(),
                part,
            });
        }
        let bytes = self.to_bytes(key);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(key.file_name());
        std::fs::write(&path, &bytes)?;
        breval_obs::counter("snapshot_bytes_written", bytes.len() as u64);
        Ok(path)
    }

    /// Loads the snapshot stored for `key` under `dir`, verifying the file's
    /// embedded key matches. Emits the `snapshot_load` span; a key mismatch
    /// additionally bumps the `snapshot_key_mismatch` counter so reload
    /// loops (brevald) can alert on it instead of silently retrying.
    pub fn load(dir: &Path, key: &SnapshotKey) -> Result<Self, SnapshotError> {
        let _span = breval_obs::span!("snapshot_load");
        let bytes = std::fs::read(dir.join(key.file_name()))?;
        let (found, snap) = ScenarioSnapshot::from_bytes(&bytes)?;
        if &found != key {
            breval_obs::counter("snapshot_key_mismatch", 1);
            return Err(SnapshotError::KeyMismatch {
                expected: key.clone(),
                found,
            });
        }
        Ok(snap)
    }

    /// A deterministic text summary of everything the snapshot holds —
    /// node/link counts, cone totals, PPDC shape, and per-relationship-class
    /// confusion counts from the scored join. Cold-built and warm-loaded
    /// snapshots of the same scenario must render byte-identically; CI diffs
    /// exactly that.
    #[must_use]
    pub fn summary_csv(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, key: &str, value: u64| {
            out.push_str(&format!("{},{},{}\n", self.name, key, value));
        };
        let nodes = self.csr.get().map_or(0, |c| c.node_count() as u64);
        push(&mut out, "nodes", nodes);
        let cone_total: u64 = self
            .cone_sizes
            .get()
            .map_or(0, |c| c.iter().map(|(_, s)| s as u64).sum());
        push(&mut out, "cone_size_total", cone_total);
        let (ppdc_rows, ppdc_total) = match self.ppdc.get() {
            Some(p) => (
                p.indexer().len() as u64,
                p.sizes().iter().map(|(_, s)| s as u64).sum(),
            ),
            None => (0, 0),
        };
        push(&mut out, "ppdc_ases", ppdc_rows);
        push(&mut out, "ppdc_size_total", ppdc_total);
        let scored = self.scored.get().map(Arc::clone).unwrap_or_default();
        push(&mut out, "scored_links", scored.len() as u64);
        for class in [RelClass::P2c, RelClass::P2p, RelClass::S2s] {
            let m = confusion(&scored, class);
            push(&mut out, &format!("{class}_tp"), m.tp as u64);
            push(&mut out, &format!("{class}_fp"), m.fp as u64);
            push(&mut out, &format!("{class}_fn"), m.fn_ as u64);
            push(&mut out, &format!("{class}_tn"), m.tn as u64);
        }
        out
    }
}

/// Relationship wire tags: 0 = p2p, 1 = s2s, 2 = p2c.
fn rel_tag(rel: Rel) -> (u32, u32) {
    match rel {
        Rel::P2p => (0, 0),
        Rel::S2s => (1, 0),
        Rel::P2c { provider } => (2, provider.0),
    }
}

fn write_scored(w: &mut ByteWriter, scored: &[ScoredLink]) {
    let mut flat: Vec<u32> = Vec::with_capacity(scored.len() * 6);
    for s in scored {
        let (vt, vp) = rel_tag(s.validation);
        let (it, ip) = rel_tag(s.inferred);
        flat.extend_from_slice(&[s.link.a().0, s.link.b().0, vt, vp, it, ip]);
    }
    w.put_u32_slice(&flat);
}

fn read_scored(r: &mut ByteReader) -> Result<Vec<ScoredLink>, SnapshotError> {
    let at = r.offset();
    let flat = r.take_u32_slice()?;
    let invalid = |what| SnapshotError::Codec(IoError::Invalid { offset: at, what });
    if flat.len() % 6 != 0 {
        return Err(invalid("scored link array length is not a multiple of 6"));
    }
    let mut scored = Vec::with_capacity(flat.len() / 6);
    for chunk in flat.chunks_exact(6) {
        let &[a, b, val_tag, val_prov, inf_tag, inf_prov] = chunk else {
            continue; // chunks_exact(6) yields exactly six elements
        };
        let link = Link::new(Asn(a), Asn(b))
            .filter(|l| l.a().0 == a)
            .ok_or_else(|| invalid("scored link endpoints are not a normalised pair"))?;
        let decode = |tag: u32, provider: u32| -> Result<Rel, SnapshotError> {
            let rel = match tag {
                0 => Rel::P2p,
                1 => Rel::S2s,
                2 => Rel::P2c {
                    provider: Asn(provider),
                },
                _ => return Err(invalid("unknown relationship tag")),
            };
            if rel.is_valid_for(link) {
                Ok(rel)
            } else {
                Err(invalid("p2c provider is not an endpoint of its link"))
            }
        };
        scored.push(ScoredLink {
            link,
            validation: decode(val_tag, val_prov)?,
            inferred: decode(inf_tag, inf_prov)?,
        });
    }
    Ok(scored)
}

/// Builds the eager snapshot parts for one inference: the CSR mirror of its
/// relationship graph plus customer-cone sizes over it. This is the single
/// sanctioned `CsrGraph::build` call on the analysis path.
#[must_use]
pub fn build_snapshot(name: &str, graph: &asgraph::AsGraph) -> ScenarioSnapshot {
    let csr = Arc::new(CsrGraph::build(graph));
    let cones = Arc::new(cone::customer_cone_sizes_csr(&csr));
    ScenarioSnapshot::new(name, csr, cones)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ScenarioSnapshot {
        let mut g = asgraph::AsGraph::new();
        let l = |a: u32, b: u32| Link::new(Asn(a), Asn(b)).unwrap();
        g.add_rel(l(1, 2), Rel::P2c { provider: Asn(1) }).unwrap();
        g.add_rel(l(2, 3), Rel::P2c { provider: Asn(2) }).unwrap();
        g.add_rel(l(2, 5), Rel::P2p).unwrap();
        let snap = build_snapshot("asrank", &g);
        let _ = snap.scored.set(Arc::new(vec![ScoredLink {
            link: l(1, 2),
            validation: Rel::P2c { provider: Asn(1) },
            inferred: Rel::P2p,
        }]));
        let _ = snap.ppdc.set(Arc::new(PpdcCones::default()));
        snap
    }

    fn key() -> SnapshotKey {
        SnapshotKey {
            config_hash: 0xabcd,
            seed: 7,
            name: "asrank".into(),
        }
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes(&key());
        let (found, loaded) = ScenarioSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(found, key());
        assert_eq!(loaded.name(), "asrank");
        assert_eq!(loaded.cone_sizes().unwrap().get(Asn(1)), Some(3));
        assert_eq!(loaded.scored().unwrap().len(), 1);
        // Re-encoding the loaded snapshot is byte-identical.
        assert_eq!(loaded.to_bytes(&key()), bytes);
        assert_eq!(loaded.summary_csv(), snap.summary_csv());
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes(&key());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            ScenarioSnapshot::from_bytes(&bad),
            Err(SnapshotError::Codec(IoError::BadMagic))
        ));
        // Wrong version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            ScenarioSnapshot::from_bytes(&bad),
            Err(SnapshotError::Codec(IoError::BadVersion { found: 99 }))
        ));
        // A pre-hybrid version-1 file is rejected up front — its PPDC bytes
        // would misparse under the v2 layout, so the version gate must fire
        // before any section is read.
        let mut v1 = bytes.clone();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            ScenarioSnapshot::from_bytes(&v1),
            Err(SnapshotError::Codec(IoError::BadVersion { found: 1 }))
        ));
        // Truncations at every length never panic.
        for cut in 0..bytes.len() {
            assert!(ScenarioSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage is rejected.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            ScenarioSnapshot::from_bytes(&bad),
            Err(SnapshotError::Codec(IoError::TrailingBytes { .. }))
        ));
    }

    #[test]
    fn save_refuses_incomplete_snapshots() {
        let dir = std::env::temp_dir().join("breval_snap_incomplete_test");
        // A lazy snapshot has nothing materialised: refuse at the first part.
        let lazy = ScenarioSnapshot::new_lazy("asrank");
        assert!(matches!(
            lazy.save(&dir, &key()),
            Err(SnapshotError::Incomplete { part: "csr", .. })
        ));
        // Graph parts alone are still not enough — the scored join and the
        // PPDC cones would round-trip as silently empty tables.
        let partial = build_snapshot("asrank", &asgraph::AsGraph::new());
        assert_eq!(partial.missing_part(), Some("ppdc_cones"));
        assert!(matches!(
            partial.save(&dir, &key()),
            Err(SnapshotError::Incomplete {
                part: "ppdc_cones",
                ..
            })
        ));
        // A complete snapshot reports no missing part.
        assert_eq!(sample_snapshot().missing_part(), None);
    }

    #[test]
    fn save_load_respects_key() {
        let dir = std::env::temp_dir().join("breval_snap_test");
        let snap = sample_snapshot();
        let key = key();
        let path = snap.save(&dir, &key).unwrap();
        assert!(path.ends_with(key.file_name()));
        let loaded = ScenarioSnapshot::load(&dir, &key).unwrap();
        assert_eq!(loaded.summary_csv(), snap.summary_csv());
        // A different expected key is refused even though the file decodes.
        let other = SnapshotKey {
            seed: 8,
            ..key.clone()
        };
        std::fs::copy(dir.join(key.file_name()), dir.join(other.file_name())).unwrap();
        assert!(matches!(
            ScenarioSnapshot::load(&dir, &other),
            Err(SnapshotError::KeyMismatch { .. })
        ));
    }
}
