//! Appendix A — does performance correlate with validation coverage?
//!
//! Uniformly subsample a class's validated links at 50–99 % of the original
//! size (1 % steps, 100 trials each) and track PPV_P / TPR_P / MCC. The paper
//! finds medians flat and variance growing as samples shrink — poor
//! per-class performance is not an artifact of small coverage.

use crate::metrics::{confusion, ScoredLink};
use asgraph::RelClass;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Summary statistics of one metric across trials at one sample size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSpread {
    /// Median across trials.
    pub median: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 75th percentile.
    pub q3: f64,
}

impl MetricSpread {
    fn of(mut values: Vec<f64>) -> Self {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |p: f64| -> f64 {
            if values.is_empty() {
                return 0.0;
            }
            let idx = (p * (values.len() - 1) as f64).round() as usize;
            values[idx.min(values.len() - 1)]
        };
        MetricSpread {
            median: q(0.5),
            q1: q(0.25),
            q3: q(0.75),
        }
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Results at one sample size (one x position of Figs. 4–6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Sample size as a percentage of the full set.
    pub percent: usize,
    /// Precision with P2P positive.
    pub ppv_p: MetricSpread,
    /// Recall with P2P positive.
    pub tpr_p: MetricSpread,
    /// Matthews correlation coefficient.
    pub mcc: MetricSpread,
}

/// Configuration of the subsampling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Smallest sample size (percent).
    pub min_percent: usize,
    /// Largest sample size (percent).
    pub max_percent: usize,
    /// Step between sizes (percent).
    pub step: usize,
    /// Trials per size.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            min_percent: 50,
            max_percent: 99,
            step: 1,
            trials: 100,
            seed: 2018,
        }
    }
}

/// Runs the Appendix A experiment over one class's scored links.
#[must_use]
pub fn sampling_sweep(scored: &[ScoredLink], cfg: &SamplingConfig) -> Vec<SamplePoint> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut points = Vec::new();
    let mut pool: Vec<ScoredLink> = scored.to_vec();
    let mut percent = cfg.min_percent;
    while percent <= cfg.max_percent {
        let size = (scored.len() * percent) / 100;
        let mut ppv = Vec::with_capacity(cfg.trials);
        let mut tpr = Vec::with_capacity(cfg.trials);
        let mut mcc = Vec::with_capacity(cfg.trials);
        for _ in 0..cfg.trials {
            pool.shuffle(&mut rng);
            let sample = &pool[..size.min(pool.len())];
            let m = confusion(sample, RelClass::P2p);
            ppv.push(m.ppv());
            tpr.push(m.tpr());
            mcc.push(m.mcc());
        }
        points.push(SamplePoint {
            percent,
            ppv_p: MetricSpread::of(ppv),
            tpr_p: MetricSpread::of(tpr),
            mcc: MetricSpread::of(mcc),
        });
        percent += cfg.step.max(1);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::{Asn, Link, Rel};

    fn scored_set(n: usize, wrong_every: usize) -> Vec<ScoredLink> {
        (0..n)
            .map(|i| {
                let link = Link::new(Asn(1000 + i as u32), Asn(5000 + i as u32)).unwrap();
                let validation = Rel::P2p;
                let inferred = if i % wrong_every == 0 {
                    Rel::P2c { provider: link.a() }
                } else {
                    Rel::P2p
                };
                ScoredLink {
                    link,
                    validation,
                    inferred,
                }
            })
            .collect()
    }

    #[test]
    fn medians_are_flat_variance_grows() {
        let scored = scored_set(600, 10); // TPR_P = 0.9
        let cfg = SamplingConfig {
            min_percent: 50,
            max_percent: 99,
            step: 7,
            trials: 40,
            seed: 7,
        };
        let points = sampling_sweep(&scored, &cfg);
        assert!(points.len() >= 7);
        // Median TPR stays near 0.9 at every size.
        for p in &points {
            assert!(
                (p.tpr_p.median - 0.9).abs() < 0.03,
                "median drifted at {}%: {}",
                p.percent,
                p.tpr_p.median
            );
        }
        // IQR at the smallest size ≥ IQR at the largest.
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(first.tpr_p.iqr() >= last.tpr_p.iqr());
    }

    #[test]
    fn deterministic() {
        let scored = scored_set(100, 5);
        let cfg = SamplingConfig {
            trials: 10,
            step: 10,
            ..SamplingConfig::default()
        };
        let a = sampling_sweep(&scored, &cfg);
        let b = sampling_sweep(&scored, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_zeroes() {
        let cfg = SamplingConfig {
            trials: 3,
            step: 25,
            ..SamplingConfig::default()
        };
        let points = sampling_sweep(&[], &cfg);
        assert!(!points.is_empty());
        assert_eq!(points[0].ppv_p.median, 0.0);
    }

    #[test]
    fn spread_quartiles_ordered() {
        let s = MetricSpread::of(vec![0.1, 0.9, 0.5, 0.3, 0.7]);
        assert!(s.q1 <= s.median && s.median <= s.q3);
        assert!((s.median - 0.5).abs() < 1e-12);
    }
}
