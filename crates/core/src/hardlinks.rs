//! §3.3 — "hard links" (Jin et al., NSDI 2019).
//!
//! ProbLink's authors identified five characteristics that make a link hard
//! to infer, and showed that the validation data skews toward *easy* links.
//! This module reimplements the criteria over observed data and lets the
//! experiment harness measure both effects on the simulation: per-criterion
//! error rates, and validation coverage of hard vs easy links.

use asgraph::{Asn, Link, PathSet, PathStats};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Which §3.3 criteria mark a link as hard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardLinkFlags {
    /// (i) an endpoint's node degree is below the threshold.
    pub low_degree: bool,
    /// (ii) observed by a middling number of vantage points (the band where
    /// neither "everyone sees it" nor "only the owner sees it" applies).
    pub mid_visibility: bool,
    /// (iii) neither incident to a vantage point nor to a clique AS.
    pub remote: bool,
    /// (iv) a stub link with no path containing two consecutive clique ASes.
    pub stub_without_clique_pair: bool,
    /// (v) top-down classification conflict: valley-free voting supports both
    /// orientations.
    pub conflicting_votes: bool,
}

impl HardLinkFlags {
    /// `true` if any criterion fires.
    #[must_use]
    pub fn is_hard(&self) -> bool {
        self.low_degree
            || self.mid_visibility
            || self.remote
            || self.stub_without_clique_pair
            || self.conflicting_votes
    }

    /// Number of criteria firing.
    #[must_use]
    pub fn count(&self) -> usize {
        [
            self.low_degree,
            self.mid_visibility,
            self.remote,
            self.stub_without_clique_pair,
            self.conflicting_votes,
        ]
        .into_iter()
        .filter(|b| *b)
        .count()
    }
}

/// Thresholds for the criteria. Jin et al. used node degree < 100 and a
/// 50–100 VP band against the ~500-VP RouteViews/RIS constellation; defaults
/// here scale those to the simulation's collector size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HardLinkConfig {
    /// Criterion (i) node-degree threshold.
    pub degree_threshold: usize,
    /// Criterion (ii) visibility band (inclusive), as fractions of the VP
    /// count.
    pub visibility_band: (f64, f64),
}

impl Default for HardLinkConfig {
    fn default() -> Self {
        HardLinkConfig {
            // Jin et al. used 100 against the ~61k-AS Internet; the default
            // scenario is ~1/6 that size with proportionally smaller degrees.
            degree_threshold: 30,
            visibility_band: (0.2, 0.45),
        }
    }
}

/// Classifies every observed link against the five criteria.
#[must_use]
pub fn classify_hard_links(
    paths: &PathSet,
    stats: &PathStats,
    clique: &BTreeSet<Asn>,
    cfg: &HardLinkConfig,
) -> HashMap<Link, HardLinkFlags> {
    let vps: BTreeSet<Asn> = paths.vantage_points().into_iter().collect();
    let n_vps = vps.len().max(1);
    let band_lo = (cfg.visibility_band.0 * n_vps as f64).round() as usize;
    let band_hi = (cfg.visibility_band.1 * n_vps as f64).round() as usize;

    // (iv) For stub links: does any path containing the link also contain two
    // consecutive clique members? (v) Valley-free orientation votes.
    let mut has_clique_pair: HashSet<Link> = HashSet::new();
    let mut down_votes: HashMap<(Asn, Asn), usize> = HashMap::new();
    for op in paths.paths() {
        let hops = op.path.compressed();
        let clique_pair = hops
            .windows(2)
            .any(|w| clique.contains(&w[0]) && clique.contains(&w[1]));
        let mut descending = false;
        for i in 1..hops.len() {
            let (w, u) = (hops[i - 1], hops[i]);
            if let Some(link) = Link::new(w, u) {
                if clique_pair {
                    has_clique_pair.insert(link);
                }
            }
            if !descending && clique.contains(&w) {
                descending = true;
            }
            if descending {
                if let Some(&v) = hops.get(i + 1) {
                    *down_votes.entry((u, v)).or_insert(0) += 1;
                }
            }
        }
    }

    stats
        .links()
        .iter()
        .map(|link| {
            let (a, b) = link.endpoints();
            let degree = stats.node_degree(a).min(stats.node_degree(b));
            let vis = stats.vp_count(*link);
            let a_stub = stats.transit_degree(a) == 0;
            let b_stub = stats.transit_degree(b) == 0;
            let flags = HardLinkFlags {
                low_degree: degree < cfg.degree_threshold,
                mid_visibility: vis >= band_lo && vis <= band_hi,
                remote: !vps.contains(&a)
                    && !vps.contains(&b)
                    && !clique.contains(&a)
                    && !clique.contains(&b),
                stub_without_clique_pair: (a_stub || b_stub) && !has_clique_pair.contains(link),
                conflicting_votes: down_votes.get(&(a, b)).copied().unwrap_or(0) > 0
                    && down_votes.get(&(b, a)).copied().unwrap_or(0) > 0,
            };
            (*link, flags)
        })
        .collect()
}

/// Summary of hardness vs validation coverage and classification error —
/// the §3.3 skew measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HardLinkReport {
    /// Observed links considered.
    pub total_links: usize,
    /// Links with ≥1 criterion firing.
    pub hard_links: usize,
    /// Validation coverage of hard links.
    pub hard_coverage: f64,
    /// Validation coverage of easy links.
    pub easy_coverage: f64,
    /// Classifier error rate on validated hard links.
    pub hard_error_rate: f64,
    /// Classifier error rate on validated easy links.
    pub easy_error_rate: f64,
    /// Per-criterion firing counts: (label, observed links, validated links).
    pub per_criterion: Vec<(String, usize, usize)>,
}

/// Builds the report from hard-link flags, the validated link set and scored
/// links.
#[must_use]
pub fn hard_link_report(
    flags: &HashMap<Link, HardLinkFlags>,
    validated: &BTreeSet<Link>,
    scored: &[crate::metrics::ScoredLink],
) -> HardLinkReport {
    let total_links = flags.len();
    let hard: BTreeSet<Link> = flags
        .iter()
        .filter(|(_, f)| f.is_hard())
        .map(|(l, _)| *l)
        .collect();
    let hard_links = hard.len();
    let easy_links = total_links - hard_links;
    let hard_validated = hard.iter().filter(|l| validated.contains(l)).count();
    let easy_validated = validated.len() - hard_validated;

    let mut hard_err = (0usize, 0usize);
    let mut easy_err = (0usize, 0usize);
    for s in scored {
        let wrong = s.validation.class() != s.inferred.class();
        let bucket = if hard.contains(&s.link) {
            &mut hard_err
        } else {
            &mut easy_err
        };
        bucket.0 += 1;
        if wrong {
            bucket.1 += 1;
        }
    }

    type FlagCriterion = (&'static str, fn(&HardLinkFlags) -> bool);
    let criteria: [FlagCriterion; 5] = [
        ("low_degree", |f| f.low_degree),
        ("mid_visibility", |f| f.mid_visibility),
        ("remote", |f| f.remote),
        ("stub_without_clique_pair", |f| f.stub_without_clique_pair),
        ("conflicting_votes", |f| f.conflicting_votes),
    ];
    let per_criterion = criteria
        .into_iter()
        .map(|(name, pred)| {
            let fired: Vec<Link> = flags
                .iter()
                .filter(|(_, f)| pred(f))
                .map(|(l, _)| *l)
                .collect();
            let val = fired.iter().filter(|l| validated.contains(l)).count();
            (name.to_owned(), fired.len(), val)
        })
        .collect();

    HardLinkReport {
        total_links,
        hard_links,
        hard_coverage: hard_validated as f64 / hard_links.max(1) as f64,
        easy_coverage: easy_validated as f64 / easy_links.max(1) as f64,
        hard_error_rate: hard_err.1 as f64 / hard_err.0.max(1) as f64,
        easy_error_rate: easy_err.1 as f64 / easy_err.0.max(1) as f64,
        per_criterion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::AsPath;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::new(hops.iter().map(|&h| Asn(h)).collect())
    }

    #[test]
    fn criteria_fire_as_expected() {
        let mut ps = PathSet::new();
        // Clique {1,2}; VP 10 below 1.
        ps.push(Asn(10), path(&[10, 1, 2, 20]));
        ps.push(Asn(10), path(&[10, 1, 30]));
        ps.push(Asn(11), path(&[11, 2, 1, 21]));
        // Remote link 40-41, observed via 10's paths only.
        ps.push(Asn(10), path(&[10, 1, 40, 41]));
        let stats = ps.stats();
        let clique: BTreeSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        let cfg = HardLinkConfig {
            degree_threshold: 2,
            visibility_band: (0.9, 1.0),
        };
        let flags = classify_hard_links(&ps, &stats, &clique, &cfg);

        let l_40_41 = Link::new(Asn(40), Asn(41)).unwrap();
        assert!(flags[&l_40_41].remote, "40-41 touches no VP/clique");
        // 20 saw a clique pair (1,2) on its path; 30 did not.
        let l_2_20 = Link::new(Asn(2), Asn(20)).unwrap();
        assert!(!flags[&l_2_20].stub_without_clique_pair);
        let l_1_30 = Link::new(Asn(1), Asn(30)).unwrap();
        assert!(flags[&l_1_30].stub_without_clique_pair);
        // Links incident to VP 10 are not remote.
        let l_10_1 = Link::new(Asn(10), Asn(1)).unwrap();
        assert!(!flags[&l_10_1].remote);
    }

    #[test]
    fn flag_counting() {
        let f = HardLinkFlags {
            low_degree: true,
            conflicting_votes: true,
            ..Default::default()
        };
        assert!(f.is_hard());
        assert_eq!(f.count(), 2);
        assert!(!HardLinkFlags::default().is_hard());
    }

    #[test]
    fn report_partitions_links() {
        let l1 = Link::new(Asn(1), Asn(2)).unwrap();
        let l2 = Link::new(Asn(3), Asn(4)).unwrap();
        let mut flags = HashMap::new();
        flags.insert(
            l1,
            HardLinkFlags {
                low_degree: true,
                ..Default::default()
            },
        );
        flags.insert(l2, HardLinkFlags::default());
        let validated: BTreeSet<Link> = [l2].into_iter().collect();
        let report = hard_link_report(&flags, &validated, &[]);
        assert_eq!(report.total_links, 2);
        assert_eq!(report.hard_links, 1);
        assert_eq!(report.hard_coverage, 0.0);
        assert_eq!(report.easy_coverage, 1.0);
        assert_eq!(report.per_criterion.len(), 5);
    }
}
