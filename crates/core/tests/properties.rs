//! Property tests for the analysis core: metric algebra, heatmap
//! normalisation, coverage accounting, cleaning invariants.

use asgraph::{Asn, Link, Rel, RelClass};
use breval_core::cleaning::{clean, AmbiguousPolicy, CleaningConfig};
use breval_core::heatmap::{Heatmap, HeatmapConfig};
use breval_core::metrics::{confusion, ConfusionMatrix, ScoredLink};
use proptest::prelude::*;
use valdata::{LabelSource, ValidationSet};

fn arb_rel() -> impl Strategy<Value = Rel> {
    prop_oneof![
        Just(Rel::P2p),
        Just(Rel::S2s),
        (1u32..100).prop_map(|_| Rel::P2p), // weight towards p2p
    ]
}

fn arb_scored(n: usize) -> impl Strategy<Value = Vec<ScoredLink>> {
    prop::collection::vec(
        (
            1u32..500,
            501u32..1000,
            arb_rel(),
            arb_rel(),
            any::<bool>(),
            any::<bool>(),
        ),
        0..n,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .map(|(a, b, v, i, va, ia)| {
                let link = Link::new(Asn(a), Asn(b)).unwrap();
                let orient = |rel: Rel, flip: bool| match rel {
                    Rel::S2s if flip => Rel::P2c { provider: link.a() },
                    Rel::S2s => Rel::P2c { provider: link.b() },
                    other => other,
                };
                ScoredLink {
                    link,
                    validation: orient(v, va),
                    inferred: orient(i, ia),
                }
            })
            .collect()
    })
}

proptest! {
    /// MCC is symmetric in the positive-class choice and bounded in [-1, 1];
    /// PPV/TPR/F1/FM are in [0, 1]; the four cells always sum to the input.
    #[test]
    fn metric_bounds_and_symmetry(scored in arb_scored(60)) {
        let mp = confusion(&scored, RelClass::P2p);
        let mc = confusion(&scored, RelClass::P2c);
        prop_assert_eq!(mp.total(), scored.len());
        prop_assert_eq!(mc.total(), scored.len());
        prop_assert!((mp.mcc() - mc.mcc()).abs() < 1e-9, "MCC must not depend on the positive class");
        for m in [mp, mc] {
            prop_assert!(m.mcc() >= -1.0 - 1e-12 && m.mcc() <= 1.0 + 1e-12);
            for v in [m.ppv(), m.tpr(), m.f1(), m.fowlkes_mallows(), m.balanced_accuracy()] {
                prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
            }
        }
    }

    /// A perfect inference scores 1.0 everywhere defined.
    #[test]
    fn perfect_inference_is_perfect(scored in arb_scored(60)) {
        let perfect: Vec<ScoredLink> = scored
            .iter()
            .map(|s| ScoredLink { inferred: s.validation, ..*s })
            .collect();
        let m = confusion(&perfect, RelClass::P2p);
        prop_assert_eq!(m.fp, 0);
        prop_assert_eq!(m.fn_, 0);
        if m.tp > 0 {
            prop_assert!((m.ppv() - 1.0).abs() < 1e-12);
            prop_assert!((m.tpr() - 1.0).abs() < 1e-12);
        }
        if m.tp > 0 && m.tn > 0 {
            prop_assert!((m.mcc() - 1.0).abs() < 1e-12);
        }
    }

    /// Heatmaps are normalised distributions; TV distance is a metric-like
    /// quantity in [0, 1], zero on identical inputs.
    #[test]
    fn heatmap_normalisation(
        pairs in prop::collection::vec((1u32..2000, 2001u32..4000), 1..80),
        x_max in 10usize..200,
        y_max in 10usize..200,
    ) {
        let cfg = HeatmapConfig { x_bins: 8, y_bins: 8, x_max, y_max };
        let links: Vec<Link> = pairs
            .iter()
            .map(|(a, b)| Link::new(Asn(*a), Asn(*b)).unwrap())
            .collect();
        let hm = Heatmap::build(links.iter(), |a| a.0 as usize, cfg);
        let sum: f64 = hm.cells.iter().flatten().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(hm.tv_distance(&hm), 0.0);
        prop_assert!(hm.bottom_left_mass() >= 0.0 && hm.bottom_left_mass() <= 1.0 + 1e-12);
    }

    /// Cleaning never invents labels: every output link existed in the input,
    /// and the census adds up.
    #[test]
    fn cleaning_is_conservative(
        entries in prop::collection::vec(
            (1u32..400, 401u32..800, 0u8..4, 0u8..4),
            0..60,
        ),
        policy in prop::sample::select(vec![
            AmbiguousPolicy::Ignore,
            AmbiguousPolicy::P2pIfFirstP2p,
            AmbiguousPolicy::AlwaysP2c,
        ]),
    ) {
        let mut set = ValidationSet::new();
        for (a, b, r1, r2) in &entries {
            let link = Link::new(Asn(*a), Asn(*b)).unwrap();
            let mk = |code: u8| match code {
                0 => Rel::P2p,
                1 => Rel::P2c { provider: link.a() },
                2 => Rel::P2c { provider: link.b() },
                _ => Rel::S2s,
            };
            set.add(link, mk(*r1), LabelSource::Communities);
            set.add(link, mk(*r2), LabelSource::Rpsl);
        }
        let org = asregistry::As2Org::new();
        let cleaned = clean(&set, &org, &CleaningConfig { ambiguous: policy, drop_siblings: true });
        prop_assert!(cleaned.len() <= set.len());
        for link in cleaned.labels.keys() {
            prop_assert!(set.entries.contains_key(link), "invented link {link}");
        }
        let r = &cleaned.report;
        prop_assert_eq!(r.raw_links, set.len());
        prop_assert_eq!(r.clean_links, cleaned.len());
        // Accounting: dropped + kept == raw (no sibling/spurious links here).
        let dropped = r.ambiguous_dropped + r.as_trans_dropped + r.reserved_dropped
            + r.sibling_dropped + r.s2s_only_dropped;
        prop_assert_eq!(dropped + r.clean_links, r.raw_links);
    }

    /// The validation-set text format round-trips arbitrary label sets.
    #[test]
    fn validation_set_text_roundtrip(
        entries in prop::collection::vec((1u32..10_000, 10_001u32..20_000, 0u8..4), 0..50)
    ) {
        let mut set = ValidationSet::new();
        for (a, b, code) in &entries {
            let link = Link::new(Asn(*a), Asn(*b)).unwrap();
            let rel = match code {
                0 => Rel::P2p,
                1 => Rel::P2c { provider: link.a() },
                2 => Rel::P2c { provider: link.b() },
                _ => Rel::S2s,
            };
            set.add(link, rel, LabelSource::Communities);
        }
        let parsed = ValidationSet::parse(&set.to_text()).unwrap();
        prop_assert_eq!(set, parsed);
    }
}

/// Degenerate confusion matrices never panic or return NaN.
#[test]
fn degenerate_matrices_are_finite() {
    for tp in [0usize, 1] {
        for fp in [0usize, 1] {
            for tn in [0usize, 1] {
                for fn_ in [0usize, 1] {
                    let m = ConfusionMatrix { tp, fp, tn, fn_ };
                    for v in [
                        m.ppv(),
                        m.tpr(),
                        m.f1(),
                        m.mcc(),
                        m.fowlkes_mallows(),
                        m.balanced_accuracy(),
                    ] {
                        assert!(v.is_finite(), "non-finite metric for {m:?}");
                    }
                }
            }
        }
    }
}
