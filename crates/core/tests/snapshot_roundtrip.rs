//! Scenario-snapshot persistence, end to end: saving every classifier's
//! snapshot and reloading it must reproduce the analysis byte-for-byte,
//! at any thread count — and corrupt files must fail loudly but gracefully.

use breval_core::pipeline::{HeatmapMetric, Scenario, ScenarioConfig};
use breval_core::snapshot::{ScenarioSnapshot, SnapshotError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;

const CLASSIFIERS: [&str; 4] = ["asrank", "problink", "toposcope", "gao"];

fn config() -> ScenarioConfig {
    ScenarioConfig::small(99)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("breval_snap_rt_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Saves all four classifiers' snapshots and returns their file bytes.
fn save_all(scenario: &Scenario, dir: &std::path::Path) -> BTreeMap<String, Vec<u8>> {
    CLASSIFIERS
        .iter()
        .map(|name| {
            let path = scenario
                .save_snapshot(dir, name)
                .unwrap_or_else(|e| panic!("saving {name}: {e}"));
            (
                (*name).to_owned(),
                std::fs::read(path).expect("written snapshot is readable"),
            )
        })
        .collect()
}

/// One shared scenario for the tests that only read it.
fn shared_scenario() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::run(config()))
}

#[test]
fn snapshots_round_trip_byte_identical_across_classifiers_and_threads() {
    // Same scenario, thread caps 1 and 4: the persisted snapshots must be
    // byte-identical — the pool guarantees deterministic results and the
    // codec adds nothing run-dependent.
    // `with_thread_cap` scopes + serialises the process-global cap against
    // any concurrently running test in this binary.
    let dir1 = temp_dir("t1");
    let bytes1 = breval_par::with_thread_cap(Some(1), || {
        let s1 = Scenario::run(config());
        save_all(&s1, &dir1)
    });

    let dir4 = temp_dir("t4");
    let (s4, bytes4) = breval_par::with_thread_cap(Some(4), || {
        let s4 = Scenario::run(config());
        let bytes = save_all(&s4, &dir4);
        (s4, bytes)
    });

    for name in CLASSIFIERS {
        assert_eq!(
            bytes1[name], bytes4[name],
            "snapshot for {name} differs between 1 and 4 threads"
        );

        // Warm load reproduces every analysis output of the cold build.
        let loaded = Scenario::load_snapshot(&dir4, &s4.config, name)
            .unwrap_or_else(|e| panic!("loading {name}: {e}"));
        let cold = s4.snapshot_arc(name);
        assert_eq!(
            loaded.summary_csv(),
            cold.summary_csv(),
            "summary of {name}"
        );
        assert_eq!(
            *loaded
                .cone_sizes()
                .expect("loaded snapshots are materialised"),
            *s4.cone_sizes_arc(name),
            "cone sizes of {name}"
        );
        assert_eq!(
            *loaded
                .ppdc_sizes()
                .expect("loaded snapshots are materialised"),
            *s4.ppdc_sizes_arc(name),
            "PPDC sizes of {name}"
        );
        assert_eq!(
            *loaded.scored().expect("loaded snapshots are materialised"),
            *s4.scored_arc(name),
            "scored join of {name}"
        );
        // And re-encoding the loaded snapshot recreates the file bytes.
        assert_eq!(
            loaded.to_bytes(&s4.snapshot_key(name)),
            bytes4[name],
            "re-encode of {name}"
        );
    }

    // A wrong-version file is refused gracefully.
    let mut bad = bytes4["asrank"].clone();
    bad[8] = 0xfe;
    assert!(matches!(
        ScenarioSnapshot::from_bytes(&bad),
        Err(SnapshotError::Codec(_))
    ));
}

#[test]
fn ppdc_heatmaps_follow_the_requested_classifier() {
    // Regression for `Scenario::heatmaps` hard-wiring the ASRank PPDC sizes
    // into every classifier's plot: the per-classifier path must actually
    // use the named classifier's cones.
    let s = shared_scenario();
    let asrank = s.ppdc_sizes_arc("asrank");
    let problink = s.ppdc_sizes_arc("problink");
    assert_ne!(
        *asrank, *problink,
        "seed 99 must give ASRank and ProbLink different PPDC cones; pick another seed"
    );
    let (inf_a, val_a) = s.heatmaps_for("asrank", HeatmapMetric::Ppdc);
    let (inf_p, val_p) = s.heatmaps_for("problink", HeatmapMetric::Ppdc);
    assert!(
        inf_a.cells != inf_p.cells || val_a.cells != val_p.cells,
        "PPDC heatmaps for ASRank and ProbLink are identical — classifier not threaded through"
    );
    // The default entry point keeps the paper's ASRank view.
    let (inf_default, _) = s.heatmaps(HeatmapMetric::Ppdc);
    assert_eq!(inf_default.cells, inf_a.cells);
}
