//! Wire-format demo: export the simulated collector state to real MRT
//! `TABLE_DUMP_V2` bytes, read it back two ways, and show how a legacy
//! decoder (ignoring `AS4_PATH`) manufactures the spurious `AS_TRANS`
//! relationships that §4.2 cleans away.
//!
//! ```sh
//! cargo run --release --example mrt_roundtrip
//! ```

use breval::asgraph::asn::AS_TRANS;
use breval::bgpsim::snapshot::pathset_from_mrt;
use breval::bgpwire::{AsnEncoding, Community, Ipv4Prefix, UpdateMessage};
use breval::topogen::{self, TopologyConfig};

fn main() {
    // --- single UPDATE message over a 16-bit session --------------------------
    let prefix: Ipv4Prefix = "203.0.113.0/24".parse().expect("valid prefix");
    let update = UpdateMessage::announcement(
        vec![prefix],
        vec![
            breval::asgraph::Asn(3356),
            breval::asgraph::Asn(200_100), // 4-byte ASN
        ],
        vec![Community::new(3356, 100)],
    );
    let bytes = update.encode(AsnEncoding::TwoByte);
    println!("UPDATE encoded for a 16-bit peer: {} bytes", bytes.len());
    let mut slice = &bytes[..];
    let decoded = UpdateMessage::decode(&mut slice, AsnEncoding::TwoByte).expect("decodes");
    println!(
        "  legacy AS_PATH view: {:?}",
        decoded.as_path_legacy().unwrap()
    );
    println!("  AS4-reconstructed:   {:?}", decoded.as_path().unwrap());

    // --- full RIB dump --------------------------------------------------------
    let topology = topogen::generate(&TopologyConfig::small(7));
    let snapshot = breval::bgpsim::simulate(&topology);
    let mrt = snapshot.to_mrt(&topology);
    println!(
        "\nMRT TABLE_DUMP_V2 dump: {:.1} MiB for {} observations",
        mrt.len() as f64 / (1024.0 * 1024.0),
        snapshot.observations.len()
    );

    let modern = pathset_from_mrt(&mrt, true).expect("modern read");
    let legacy = pathset_from_mrt(&mrt, false).expect("legacy read");
    let legacy_as_trans = legacy
        .paths()
        .iter()
        .filter(|p| p.path.hops().contains(&AS_TRANS))
        .count();
    let modern_as_trans = modern
        .paths()
        .iter()
        .filter(|p| p.path.hops().contains(&AS_TRANS))
        .count();
    println!("paths containing AS23456 (AS_TRANS):");
    println!("  legacy decoder (ignores AS4_PATH): {legacy_as_trans}");
    println!("  modern decoder (reconstructs):     {modern_as_trans}");
    println!(
        "\nEvery legacy AS_TRANS path is a potential spurious validation label —\n\
         the paper found 15 such relationships in the 2018 validation data (§4.2)."
    );

    breval::obs::write_run_manifest("mrt_roundtrip", 7);
}
