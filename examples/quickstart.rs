//! Quickstart: generate a small Internet, collect routes, infer
//! relationships, and check them against ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use breval::asgraph::RelClass;
use breval::asinfer::{AsRank, Classifier};
use breval::topogen::{self, TopologyConfig};

fn main() {
    // 1. A seeded, Internet-like topology with ground-truth relationships.
    let config = TopologyConfig::small(42);
    let topology = topogen::generate(&config);
    println!(
        "generated {} ASes, {} links ({} Tier-1s, {} hypergiants, {} vantage points)",
        topology.as_count(),
        topology.link_count(),
        topology.tier1.len(),
        topology.hypergiants.len(),
        topology.collector_peers.len()
    );

    // 2. Propagate every announcement and record what the collector sees.
    let snapshot = breval::bgpsim::simulate(&topology);
    let paths = snapshot.to_pathset(false);
    println!("collector observed {} paths", paths.len());

    // 3. Run ASRank over the observed paths.
    let inference = AsRank::new().infer(&paths);
    println!(
        "ASRank classified {} links; inferred clique: {:?}",
        inference.len(),
        inference.clique
    );

    // 4. Score against ground truth (siblings excluded).
    let mut correct = 0usize;
    let mut total = 0usize;
    for (link, rel) in &inference.rels {
        let Some(gt) = topology.gt_rel(*link) else {
            continue;
        };
        if gt.base.class() == RelClass::S2s {
            continue;
        }
        total += 1;
        if gt.base == *rel {
            correct += 1;
        }
    }
    println!(
        "accuracy vs ground truth: {:.1}% ({correct}/{total})",
        100.0 * correct as f64 / total as f64
    );

    // 5. Peek at a disagreement — usually a partial-transit or special-stub
    //    link (the paper's §6 failure classes).
    for (link, rel) in &inference.rels {
        let Some(gt) = topology.gt_rel(*link) else {
            continue;
        };
        if gt.base.class() != RelClass::S2s && gt.base != *rel {
            println!(
                "example disagreement on {link}: inferred {rel}, ground truth {} (partial transit: {})",
                gt.base, gt.partial_transit
            );
            break;
        }
    }

    breval::obs::write_run_manifest("quickstart", 42);
}
