//! The §6.1 case study: why does the Cogent-like Tier-1 attract so many
//! wrongly-inferred-P2P links, and what does its looking glass reveal?
//!
//! ```sh
//! cargo run --release --example cogent_case_study
//! cargo run --release --example cogent_case_study -- --full
//! ```

use breval::analysis::casestudy::run_case_study;
use breval::analysis::report;
use breval::analysis::{Scenario, ScenarioConfig};
use breval::bgpsim::LookingGlass;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        ScenarioConfig::default()
    } else {
        ScenarioConfig::small(2018)
    };
    eprintln!("running scenario ({} ASes)…", config.topology.total_ases());
    let scenario = Scenario::run(config);

    let scored = scenario.scored_in_class("asrank", "T1-TR");
    eprintln!("T1-TR class: {} scored links", scored.len());

    let lg = LookingGlass::new(&scenario.topology);
    let asrank = scenario.inference("asrank").expect("asrank always runs");
    let cs = run_case_study(
        &scored,
        asrank,
        &scenario.validation,
        &scenario.paths,
        &lg,
        &scenario.topology.tier1,
    );
    println!("{}", report::render_case_study(&cs));
    println!(
        "ground truth: the Cogent-like Tier-1 is {} — the case study should converge on it.",
        scenario.topology.cogent
    );

    // Show one looking-glass route in full, as the paper does with Cogent's
    // public looking glass.
    if let Some(finding) = cs
        .findings
        .iter()
        .find(|f| f.reason == breval::analysis::casestudy::TargetReason::PartialTransit)
    {
        if let Some(route) = lg.query(cs.focus, finding.neighbor) {
            println!(
                "\nlooking glass at {}: route to {} via {:?}",
                cs.focus, finding.neighbor, route.path
            );
            println!("communities on the received announcement:");
            for c in &route.communities {
                match c {
                    breval::bgpsim::communities::AnyCommunity::Classic(c) => {
                        println!("  {c}")
                    }
                    breval::bgpsim::communities::AnyCommunity::Large(lc) => {
                        println!("  {lc}")
                    }
                }
            }
            println!("(the …:990 tag is the partial-transit scoped-export request)");
        }
    }

    breval::obs::write_run_manifest("cogent_case_study", scenario.config.topology.seed);
}
