//! Runs all four classifiers (Gao 2001, ASRank 2013, ProbLink 2019,
//! TopoScope 2020) on the same observed paths and prints per-class
//! evaluation tables against the cleaned validation data — the §6 analysis.
//!
//! ```sh
//! cargo run --release --example classifier_shootout
//! cargo run --release --example classifier_shootout -- --full
//! ```

use breval::analysis::report;
use breval::analysis::{Scenario, ScenarioConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut config = if full {
        ScenarioConfig::default()
    } else {
        ScenarioConfig::small(2018)
    };
    config.include_gao = true;
    eprintln!("running scenario ({} ASes)…", config.topology.total_ases());
    let scenario = Scenario::run(config);

    for name in ["gao", "asrank", "problink", "toposcope"] {
        let table = scenario.eval_table(name);
        println!("{}", report::render_eval_table(&table));
    }

    // The paper's observation: all classifiers are near-perfect on P2C but
    // diverge sharply on the small P2P classes (S-T1, T1-TR).
    println!("headline comparison (PPV_P on T1-TR vs Total):");
    for name in ["asrank", "problink", "toposcope"] {
        let table = scenario.eval_table(name);
        let total = table.total.p2p.ppv();
        let t1tr = table.rows.get("T1-TR").map(|e| e.p2p.ppv());
        match t1tr {
            Some(v) => println!(
                "  {name:<10} total {total:.3} → T1-TR {v:.3} (Δ {:+.3})",
                v - total
            ),
            None => println!("  {name:<10} total {total:.3} → T1-TR class below row threshold"),
        }
    }

    breval::obs::write_run_manifest("classifier_shootout", scenario.config.topology.seed);
}
