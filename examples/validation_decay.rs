//! The §7 outlook, quantified: how fast does best-effort validation data go
//! stale under topology churn, and how much extra coverage does re-sampling
//! over time buy?
//!
//! ```sh
//! cargo run --release --example validation_decay
//! cargo run --release --example validation_decay -- --steps 24
//! ```

use breval::analysis::timeline::{render_timeline, run_timeline, TimelineConfig};
use breval::topogen::{self, ChurnConfig, TopologyConfig};

fn main() {
    let steps = std::env::args()
        .skip_while(|a| a != "--steps")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12usize);

    let base = topogen::generate(&TopologyConfig::small(2018));
    eprintln!(
        "evolving a {}-AS topology over {} monthly steps…",
        base.as_count(),
        steps
    );

    let cfg = TimelineConfig {
        steps,
        churn: ChurnConfig::default(),
        ..TimelineConfig::default()
    };
    let points = run_timeline(&base, &cfg);
    println!("{}", render_timeline(&points));

    println!(
        "Interpretation: the paper's §3.2 staleness problem is the survival\n\
         column (WHOIS/community records describing relationships that have\n\
         since changed); the §7 re-sampling opportunity is the cumulative\n\
         column (unique links validated by the union of snapshots)."
    );

    breval::obs::write_run_manifest("validation_decay", 2018);
}
