//! Reproduces the paper's bias analysis (§5) on one scenario: regional and
//! topological link shares vs validation coverage, the §4.2 cleaning census,
//! and the transit-degree heatmap summary.
//!
//! ```sh
//! cargo run --release --example bias_report            # small scenario
//! cargo run --release --example bias_report -- --full  # paper-scale (~20 s)
//! ```

use breval::analysis::pipeline::HeatmapMetric;
use breval::analysis::report;
use breval::analysis::{Scenario, ScenarioConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        ScenarioConfig::default()
    } else {
        ScenarioConfig::small(2018)
    };
    eprintln!("running scenario ({} ASes)…", config.topology.total_ases());
    let scenario = Scenario::run(config);

    println!("{}", report::render_cleaning(&scenario.validation.report));
    println!(
        "{}",
        report::render_coverage(&scenario.fig1(), "Fig. 1 — regional imbalance")
    );
    println!(
        "{}",
        report::render_coverage(&scenario.fig2(), "Fig. 2 — topological imbalance")
    );

    let (inferred, validated) = scenario.heatmaps(HeatmapMetric::TransitDegree);
    println!(
        "{}",
        report::render_heatmap_pair(
            &inferred,
            &validated,
            "Fig. 3 — transit-degree imbalance for TR° links"
        )
    );

    // The paper's headline: LACNIC-internal links are a sizable share of the
    // topology yet essentially absent from validation.
    if let Some(l) = scenario.fig1().iter().find(|r| r.class == "L°") {
        println!(
            "L° holds {:.0}% of inferred links but only {:.1}% validation coverage.",
            100.0 * l.share,
            100.0 * l.coverage
        );
    }

    breval::obs::write_run_manifest("bias_report", scenario.config.topology.seed);
}
