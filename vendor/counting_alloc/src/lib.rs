//! A counting global allocator.
//!
//! Wraps [`std::alloc::System`] and counts allocation events and bytes in
//! relaxed atomics, so a benchmark binary can report per-stage allocation
//! deltas. The workspace is `forbid(unsafe_code)` outside `vendor/`; the
//! `GlobalAlloc` impl (inherently unsafe) therefore lives here.
//!
//! Usage (binary-only):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc::new();
//! let before = counting_alloc::allocation_count();
//! // ... stage ...
//! let allocs = counting_alloc::allocation_count() - before;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Allocation events since process start (alloc / alloc_zeroed / realloc).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested since process start (frees are not subtracted — this is a
/// monotonic churn counter, not a live-bytes gauge).
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// The counting allocator; install with `#[global_allocator]`.
pub struct CountingAlloc;

impl CountingAlloc {
    /// A fresh instance (`const`, so it can back a `static`).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
