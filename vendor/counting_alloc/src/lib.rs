//! A counting global allocator.
//!
//! Wraps [`std::alloc::System`] and counts allocation events and bytes —
//! process-wide in relaxed atomics and per-thread in `const`-initialised
//! thread-locals — so a benchmark binary can report per-stage allocation
//! deltas and the observability journal can attribute allocations to the
//! span (and thread) that made them. The workspace is `forbid(unsafe_code)`
//! outside `vendor/`; the `GlobalAlloc` impl (inherently unsafe) therefore
//! lives here.
//!
//! Usage (binary-only):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc::new();
//! let before = counting_alloc::allocation_count();
//! // ... stage ...
//! let allocs = counting_alloc::allocation_count() - before;
//! ```
//!
//! The thread-local counters use `const { Cell::new(0) }` initialisers, so
//! touching them from inside the allocator never allocates (which would
//! recurse); accesses go through `LocalKey::try_with` so allocations during
//! thread teardown (after TLS destruction) are still served, merely
//! uncounted per-thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Allocation events since process start (alloc / alloc_zeroed / realloc).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested since process start (frees are not subtracted — this is a
/// monotonic churn counter, not a live-bytes gauge).
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Allocation events performed by the *calling thread* since it started.
/// Monotonic; sample before/after a region to attribute its allocations.
pub fn thread_allocation_count() -> u64 {
    THREAD_ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

/// Bytes requested by the *calling thread* since it started (monotonic
/// churn, like [`allocated_bytes`]).
pub fn thread_allocated_bytes() -> u64 {
    THREAD_BYTES.try_with(Cell::get).unwrap_or(0)
}

#[inline]
fn count(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size as u64, Ordering::Relaxed);
    // Ignore errors: during TLS teardown the per-thread cells are gone, but
    // the allocation itself must still succeed.
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + size as u64));
}

/// The counting allocator; install with `#[global_allocator]`.
pub struct CountingAlloc;

impl CountingAlloc {
    /// A fresh instance (`const`, so it can back a `static`).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        System.realloc(ptr, layout, new_size)
    }
}
