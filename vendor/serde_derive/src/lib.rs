//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in. Parses the item's token stream directly (no `syn`/`quote`,
//! which are unavailable offline) and emits impls as source text.
//!
//! Supported shapes — everything the workspace derives on:
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialize transparently, like
//!   real serde),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default).
//!
//! Container/field `#[serde(...)]` attributes are accepted and ignored;
//! the only one used in the workspace is `#[serde(transparent)]` on a
//! newtype, whose behaviour matches the untagged newtype default here.
//!
//! Generic type parameters are not supported (nothing in the workspace
//! derives serde traits on a generic type).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Number of tuple fields.
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Splits a token list on top-level commas, treating `<`/`>` as nesting
/// (grouped delimiters are already nested by the tokenizer).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extracts the field name from one named-field declaration
/// (`#[attr]* pub? name: Type`).
fn named_field(tokens: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            // Attribute: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // Optional `(crate)` / `(super)` restriction.
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                if matches!(tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                    return Some(id.to_string());
                }
                return None;
            }
            _ => return None,
        }
    }
    None
}

fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<String> {
    split_top_level(&group_tokens)
        .iter()
        .filter(|seg| !seg.is_empty())
        .filter_map(|seg| named_field(seg))
        .collect()
}

fn parse_variant(tokens: &[TokenTree]) -> Option<Variant> {
    let mut i = 0;
    // Skip attributes (doc comments arrive as `#[doc = ...]`).
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2;
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    let fields = match tokens.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Tuple(
                split_top_level(&inner)
                    .iter()
                    .filter(|seg| !seg.is_empty())
                    .count(),
            )
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream().into_iter().collect()))
        }
        _ => Fields::Unit,
    };
    Some(Variant { name, fields })
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream().into_iter().collect()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(
                        split_top_level(&inner)
                            .iter()
                            .filter(|seg| !seg.is_empty())
                            .count(),
                    )
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                _ => return Err(format!("unsupported struct body for `{name}`")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                _ => return Err(format!("expected enum body for `{name}`")),
            };
            let variants = split_top_level(&body)
                .iter()
                .filter(|seg| !seg.is_empty())
                .filter_map(|seg| parse_variant(seg))
                .collect();
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}`")),
    }
}

fn serialize_body(item: &Item) -> String {
    match item {
        Item::Struct { fields, .. } => match fields {
            Fields::Unit => "::serde::Content::Null".to_owned(),
            // Newtype structs serialize transparently (real serde default);
            // wider tuple structs serialize as sequences.
            Fields::Tuple(1) => "::serde::Serialize::collect(&self.0)".to_owned(),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::collect(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
            }
            Fields::Named(names) => {
                let entries: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "(::serde::Content::Str(\"{f}\".to_owned()), \
                             ::serde::Serialize::collect(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Content::Map(vec![{}])", entries.join(", "))
            }
        },
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push(format!(
                        "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_owned()),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let value = if *n == 1 {
                            "::serde::Serialize::collect(f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::collect({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push(format!(
                            "{name}::{vn}({binds}) => ::serde::Content::Map(vec![\
                             (::serde::Content::Str(\"{vn}\".to_owned()), {value})]),",
                            binds = binds.join(", "),
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::serde::Content::Str(\"{f}\".to_owned()), \
                                     ::serde::Serialize::collect({f}))"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![\
                             (::serde::Content::Str(\"{vn}\".to_owned()), \
                             ::serde::Content::Map(vec![{entries}]))]),",
                            entries = entries.join(", "),
                        ));
                    }
                }
            }
            if variants.is_empty() {
                "match *self {}".to_owned()
            } else {
                format!("match self {{ {} }}", arms.join(" "))
            }
        }
    }
}

/// Derives `serde::Serialize` (vendored Content-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return error(&msg),
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    let body = serialize_body(&item);
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn collect(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated impl must parse")
}

/// Derives `serde::Deserialize`: a compile-only stub (nothing in the
/// workspace deserializes at runtime).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return error(&msg),
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {{\n\
                 Err(<D::Error as ::serde::de::Error>::custom(\n\
                     \"vendored serde: Deserialize is a compile-only stub\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated impl must parse")
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid")
}
