//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the subset the wire-format code uses: big-endian [`Buf`]
//! reads over `&[u8]` and [`BytesMut`], and [`BufMut`] writes into
//! [`BytesMut`] and `Vec<u8>`. `BytesMut` here is a plain growable buffer
//! with a read cursor — no shared-ownership tricks, which the workspace
//! never relies on.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read access to a byte buffer (big-endian getters, like real `bytes`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the read cursor by `cnt`.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Copies `dst.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer (big-endian putters).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// A growable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor: `data[pos..]` is unread.
    pos: usize,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    /// Number of unread bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a fresh `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// The unread bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Consumes the buffer, yielding the unread bytes.
    #[must_use]
    pub fn freeze(self) -> Vec<u8> {
        if self.pos == 0 {
            self.data
        } else {
            self.data[self.pos..].to_vec()
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let pos = self.pos;
        &mut self.data[pos..]
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            pos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u16(0x0203);
        buf.put_u32(0x0405_0607);
        buf.put_slice(b"xy");
        assert_eq!(buf.len(), 9);
        assert_eq!(buf.get_u8(), 1);
        assert_eq!(buf.get_u16(), 0x0203);
        assert_eq!(buf.get_u32(), 0x0405_0607);
        let mut rest = [0u8; 2];
        buf.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert!(!buf.has_remaining());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u16(), 0x0102);
        assert_eq!(s.remaining(), 2);
        s.advance(2);
        assert!(s.is_empty());
    }
}
