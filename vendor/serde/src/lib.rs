//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, API-compatible subset of serde sufficient for the codebase:
//!
//! * `#[derive(Serialize, Deserialize)]` (via the sibling `serde_derive`
//!   proc-macro crate, re-exported below exactly like the real crate does
//!   under its `derive` feature);
//! * [`Serialize`] implementations for the std types the workspace
//!   serializes (integers, floats, strings, tuples, options, sequences,
//!   maps, sets, references, smart pointers);
//! * a trivial [`Deserialize`] trait whose derived impls return an error —
//!   nothing in the workspace deserializes at runtime, but the derives must
//!   compile.
//!
//! Instead of the real serde's visitor/serializer machinery, serialization
//! funnels through the [`Content`] tree, which `serde_json` (also vendored)
//! renders to JSON. This keeps the derive macro and the data format crate
//! tiny while preserving call-site compatibility (`serde_json::to_string`,
//! derive attributes, trait bounds like `T: Serialize`).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the vendored stand-in for serde's data model.
///
/// External tagging matches real serde: unit enum variants serialize as
/// their name, data-bearing variants as a one-entry map.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key→value map (keys serialize to JSON object keys).
    Map(Vec<(Content, Content)>),
}

/// A type that can be serialized (into a [`Content`] tree).
pub trait Serialize {
    /// Collects `self` into the vendored data model.
    fn collect(&self) -> Content;
}

/// Error support for the (unused at runtime) deserialization half.
pub mod de {
    /// Minimal counterpart of `serde::de::Error`.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

/// Minimal counterpart of `serde::Deserializer`.
pub trait Deserializer<'de>: Sized {
    /// The error type produced on failure.
    type Error: de::Error;
}

/// A type that can (nominally) be deserialized. The vendored derive
/// generates impls that always error; nothing in the workspace calls them.
pub trait Deserialize<'de>: Sized {
    /// Attempts to deserialize `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn collect(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn collect(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn collect(&self) -> Content {
        Content::F64(*self)
    }
}
impl Serialize for f32 {
    fn collect(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Serialize for bool {
    fn collect(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Serialize for char {
    fn collect(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Serialize for str {
    fn collect(&self) -> Content {
        Content::Str(self.to_owned())
    }
}
impl Serialize for String {
    fn collect(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Serialize for () {
    fn collect(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn collect(&self) -> Content {
        (**self).collect()
    }
}
impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn collect(&self) -> Content {
        (**self).collect()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn collect(&self) -> Content {
        (**self).collect()
    }
}
impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn collect(&self) -> Content {
        (**self).collect()
    }
}
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn collect(&self) -> Content {
        (**self).collect()
    }
}
impl<T: Serialize + ToOwned + ?Sized> Serialize for std::borrow::Cow<'_, T> {
    fn collect(&self) -> Content {
        (**self).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn collect(&self) -> Content {
        match self {
            Some(v) => v.collect(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn collect(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::collect).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn collect(&self) -> Content {
        self.as_slice().collect()
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn collect(&self) -> Content {
        self.as_slice().collect()
    }
}
impl<T: Serialize> Serialize for VecDeque<T> {
    fn collect(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::collect).collect())
    }
}
impl<T: Serialize> Serialize for BTreeSet<T> {
    fn collect(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::collect).collect())
    }
}
impl<T: Serialize> Serialize for HashSet<T> {
    fn collect(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::collect).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn collect(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.collect(), v.collect()))
                .collect(),
        )
    }
}
impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn collect(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.collect(), v.collect()))
                .collect(),
        )
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn collect(&self) -> Content {
                Content::Seq(vec![$(self.$idx.collect()),+])
            }
        }
    };
}

impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl Serialize for std::time::Duration {
    fn collect(&self) -> Content {
        Content::Map(vec![
            (
                Content::Str("secs".to_owned()),
                Content::U64(self.as_secs()),
            ),
            (
                Content::Str("nanos".to_owned()),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}
