//! Offline vendored stand-in for the `rand` crate (0.9-era API surface).
//!
//! Provides the traits and methods the workspace uses: [`RngCore`],
//! [`SeedableRng`] (with the SplitMix64-based `seed_from_u64` default the
//! real `rand_core` documents), the [`Rng`] extension trait
//! (`random`, `random_range`, `random_bool`), and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Deterministic given a seed, like the real crate; the exact streams
//! differ from upstream `rand`, which only shifts which concrete random
//! world a seed denotes.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: raw integer output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (same scheme as the real `rand_core` default).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible from the "standard" uniform distribution.
pub trait StandardUniform: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                    u64 => next_u64, usize => next_u64,
                    i8 => next_u32, i16 => next_u32, i32 => next_u32,
                    i64 => next_u64, isize => next_u64);

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardUniform>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution (uniform ints, `[0,1)`
    /// floats, fair bools).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
