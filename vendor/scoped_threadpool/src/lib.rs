//! Offline vendored stand-in for the `scoped_threadpool` crate: a
//! **persistent** pool of parked worker threads plus a scoped submission
//! API that lets jobs borrow from the caller's stack.
//!
//! Differences from the real crate, in favour of the one consumer in this
//! workspace (`breval-par`):
//!
//! * [`Pool::scoped`] takes `&self`, so multiple threads may run scopes on
//!   one shared pool concurrently (each scope tracks its own pending-job
//!   latch; jobs interleave on the shared workers).
//! * [`Pool::ensure_threads`] grows the pool in place — workers are only
//!   ever added, never dropped while another scope might be using them.
//! * A job panic is caught on the worker (the worker survives and keeps
//!   serving), recorded in the scope, and re-raised on the submitting
//!   thread when the scope completes.
//!
//! # Soundness
//!
//! [`Scope::execute`] erases the `'scope` lifetime of a submitted closure
//! (the one `unsafe` in this crate) so it can travel through the pool's
//! `'static` job channel. This is sound because a scope *always* blocks
//! until every job it submitted has finished — on the normal path at the
//! end of [`Pool::scoped`], and on the unwind path in [`Scope`]'s `Drop` —
//! so no job can outlive the borrows it captured.

use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

/// A type-erased job after lifetime erasure.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Process-wide pool-health counters (all pools in the process share them;
/// the one consumer in this workspace keeps a single resident pool).
///
/// A *park* is a worker finding the job channel empty and settling into a
/// blocking `recv`; an *unpark* is that blocked worker being woken by a job
/// arriving. Jobs picked up without blocking (channel non-empty on poll)
/// count neither. `jobs` counts every job a worker executed.
static PARKS: AtomicU64 = AtomicU64::new(0);
static UNPARKS: AtomicU64 = AtomicU64::new(0);
static JOBS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide pool-health counters:
/// `(parks, unparks, jobs_executed)`. Monotonic; diff two snapshots to
/// attribute activity to a region.
#[must_use]
pub fn pool_health() -> (u64, u64, u64) {
    (
        PARKS.load(Ordering::Relaxed),
        UNPARKS.load(Ordering::Relaxed),
        JOBS.load(Ordering::Relaxed),
    )
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared between a pool handle and its workers.
struct Inner {
    tx: Sender<Job>,
    /// Workers pull jobs one at a time through this shared receiver; the
    /// lock is held only for the blocking `recv`, never while a job runs.
    rx: Arc<Mutex<Receiver<Job>>>,
    /// Worker threads spawned so far (grow-only).
    spawned: AtomicU32,
    /// Serialises growth so concurrent `ensure_threads` don't over-spawn.
    grow: Mutex<()>,
}

/// A persistent thread pool: workers are spawned once (lazily, via
/// [`Pool::ensure_threads`]) and park in `recv` between jobs.
pub struct Pool {
    inner: Arc<Inner>,
}

impl Pool {
    /// Creates a pool and eagerly spawns `threads` workers. `Pool::new(0)`
    /// spawns nothing — combine with [`Pool::ensure_threads`] for lazy
    /// growth.
    #[must_use]
    pub fn new(threads: u32) -> Pool {
        let (tx, rx) = channel::<Job>();
        let pool = Pool {
            inner: Arc::new(Inner {
                tx,
                rx: Arc::new(Mutex::new(rx)),
                spawned: AtomicU32::new(0),
                grow: Mutex::new(()),
            }),
        };
        pool.ensure_threads(threads);
        pool
    }

    /// Number of worker threads spawned so far.
    #[must_use]
    pub fn thread_count(&self) -> u32 {
        self.inner.spawned.load(Ordering::Acquire)
    }

    /// Grows the pool to at least `threads` workers; a no-op if it is
    /// already that large. Workers are never removed.
    pub fn ensure_threads(&self, threads: u32) {
        if self.thread_count() >= threads {
            return;
        }
        let _g = lock(&self.inner.grow);
        let current = self.inner.spawned.load(Ordering::Acquire);
        for i in current..threads {
            let rx = Arc::clone(&self.inner.rx);
            thread::Builder::new()
                .name(format!("pool-worker-{i}"))
                .spawn(move || worker_loop(&rx))
                .expect("spawn pool worker thread");
        }
        self.inner
            .spawned
            .store(threads.max(current), Ordering::Release);
    }

    /// Runs `f` with a [`Scope`] on which jobs borrowing from the caller's
    /// stack can be submitted. Returns only after every submitted job has
    /// finished; if any job panicked, the first panic is re-raised here.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            shared: Arc::new(ScopeShared {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _marker: PhantomData,
        };
        let ret = f(&scope);
        scope.shared.wait_pending();
        if let Some(payload) = lock(&scope.shared.panic).take() {
            resume_unwind(payload);
        }
        ret
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Each `lock(rx)` guard is confined to its own `let` statement (a
        // `match` scrutinee would keep the guard alive across the arms and
        // self-deadlock on the re-lock below), so other workers can pull
        // the next job while this one runs. Poll first so a hot worker
        // (jobs already queued) is distinguished from one that has to park
        // in the blocking `recv`.
        let polled = lock(rx).try_recv();
        let job = match polled {
            Ok(job) => Ok(job),
            Err(TryRecvError::Disconnected) => break, // pool dropped
            Err(TryRecvError::Empty) => {
                PARKS.fetch_add(1, Ordering::Relaxed);
                let job = lock(rx).recv();
                if job.is_ok() {
                    UNPARKS.fetch_add(1, Ordering::Relaxed);
                }
                job
            }
        };
        match job {
            Ok(job) => {
                JOBS.fetch_add(1, Ordering::Relaxed);
                job()
            }
            Err(_) => break, // pool dropped; channel closed
        }
    }
}

/// Per-scope completion latch and panic slot.
struct ScopeShared {
    pending: Mutex<u32>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeShared {
    fn wait_pending(&self) {
        let mut pending = lock(&self.pending);
        while *pending > 0 {
            pending = self
                .done
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Submission handle passed to the closure of [`Pool::scoped`]. Invariant
/// in `'scope` (the `Cell` marker), like the real crate.
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    shared: Arc<ScopeShared>,
    _marker: PhantomData<Cell<&'scope mut ()>>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Submits a job that may borrow anything outliving `'scope`. The job
    /// runs on some pool worker; the surrounding [`Pool::scoped`] call
    /// does not return until it has finished.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: the scope blocks (in `Pool::scoped`, or in `Drop` when
        // unwinding) until this job has run to completion, so the closure
        // and its captured borrows strictly outlive the job's execution.
        // Erasing `'scope` to `'static` only widens what the channel's
        // type demands, never how long the data must actually live.
        let boxed: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                boxed,
            )
        };
        *lock(&self.shared.pending) += 1;
        let shared = Arc::clone(&self.shared);
        let wrapped: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(boxed));
            if let Err(payload) = result {
                lock(&shared.panic).get_or_insert(payload);
            }
            let mut pending = lock(&shared.pending);
            *pending -= 1;
            if *pending == 0 {
                shared.done.notify_all();
            }
        });
        self.pool
            .inner
            .tx
            .send(wrapped)
            .expect("pool worker channel open while a scope is live");
    }
}

impl Drop for Scope<'_, '_> {
    /// Unwind-path backstop: if the `scoped` closure itself panics after
    /// submitting jobs, block until they finish before the borrows they
    /// captured are freed. (On the normal path the pending count is
    /// already zero and this returns immediately.)
    fn drop(&mut self) {
        self.shared.wait_pending();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn jobs_borrow_from_the_caller_stack() {
        let pool = Pool::new(3);
        let data = [1u32, 2, 3, 4, 5, 6];
        let sums: Vec<Mutex<u32>> = (0..3).map(|_| Mutex::new(0)).collect();
        pool.scoped(|scope| {
            for (chunk, slot) in data.chunks(2).zip(&sums) {
                scope.execute(move || *lock(slot) = chunk.iter().sum());
            }
        });
        let total: u32 = sums.iter().map(|s| *lock(s)).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn workers_persist_across_scopes() {
        let pool = Pool::new(2);
        for _ in 0..10 {
            let hits = AtomicUsize::new(0);
            pool.scoped(|scope| {
                for _ in 0..2 {
                    scope.execute(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::SeqCst), 2);
        }
        assert_eq!(pool.thread_count(), 2, "reuse must not spawn new workers");
    }

    #[test]
    fn ensure_threads_grows_but_never_shrinks() {
        let pool = Pool::new(1);
        pool.ensure_threads(3);
        assert_eq!(pool.thread_count(), 3);
        pool.ensure_threads(2);
        assert_eq!(pool.thread_count(), 3);
    }

    #[test]
    fn job_panic_propagates_to_the_scoped_caller() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("job exploded"));
            });
        }));
        assert!(caught.is_err());
        // The worker survived the panic and keeps serving jobs.
        let ok = AtomicUsize::new(0);
        pool.scoped(|scope| {
            scope.execute(|| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
            scope.execute(|| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_scopes_share_one_pool() {
        let pool = Arc::new(Pool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    pool.scoped(|scope| {
                        for _ in 0..8 {
                            let total = &total;
                            scope.execute(move || {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 32);
        assert_eq!(pool.thread_count(), 2);
    }
}
