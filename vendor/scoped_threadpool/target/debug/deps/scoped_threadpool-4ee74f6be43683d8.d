/root/repo/vendor/scoped_threadpool/target/debug/deps/scoped_threadpool-4ee74f6be43683d8.d: src/lib.rs

/root/repo/vendor/scoped_threadpool/target/debug/deps/libscoped_threadpool-4ee74f6be43683d8.rlib: src/lib.rs

/root/repo/vendor/scoped_threadpool/target/debug/deps/libscoped_threadpool-4ee74f6be43683d8.rmeta: src/lib.rs

src/lib.rs:
