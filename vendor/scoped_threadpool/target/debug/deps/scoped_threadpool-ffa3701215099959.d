/root/repo/vendor/scoped_threadpool/target/debug/deps/scoped_threadpool-ffa3701215099959.d: src/lib.rs

/root/repo/vendor/scoped_threadpool/target/debug/deps/scoped_threadpool-ffa3701215099959: src/lib.rs

src/lib.rs:
