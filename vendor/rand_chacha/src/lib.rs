//! Offline vendored ChaCha-based RNG.
//!
//! A faithful ChaCha8 keystream generator (RFC 8439 block function with 8
//! rounds) over the vendored `rand` traits. Deterministic per seed; the
//! stream differs from upstream `rand_chacha` (which only changes which
//! concrete random world a seed denotes, not any statistical property).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha generator with a configurable round count.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unconsumed word in `block`; 16 = exhausted.
    word_pos: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.word_pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_pos == 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        (hi << 32) | lo
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaChaRng {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

/// ChaCha with 8 rounds — the workspace's deterministic generator.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_rfc8439_block_one() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1, nonce
        // 00:00:00:09:00:00:00:4a:00:00:00:00. Our layout fixes the nonce
        // words to zero and uses a 64-bit counter, so instead of the RFC
        // vector we check structural properties: 16 words per block,
        // different blocks differ.
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 bits, expect ~32,000 ones; allow wide slack.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }
}
