//! String strategies from a small regex subset.
//!
//! A `&str` used as a strategy (e.g. `"[a-z0-9]{4,12}"`) generates strings
//! matching the pattern. Supported syntax: literal characters, `[...]`
//! character classes with ranges, the `\PC` printable-class escape, and the
//! quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`. This covers every pattern used
//! in the workspace's property tests; unsupported syntax panics with the
//! offending pattern so new tests fail loudly rather than silently.

use crate::{Strategy, TestRng};

/// Inclusive character ranges to sample from.
#[derive(Debug, Clone)]
struct CharSet {
    ranges: Vec<(char, char)>,
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        let total: u64 = self
            .ranges
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum();
        let mut pick = rng.below(total);
        for &(lo, hi) in &self.ranges {
            let span = hi as u64 - lo as u64 + 1;
            if pick < span {
                return char::from_u32(lo as u32 + pick as u32)
                    .expect("char ranges avoid surrogates");
            }
            pick -= span;
        }
        unreachable!("sample within total weight")
    }
}

/// One regex element: a character set repeated `min..=max` times.
#[derive(Debug, Clone)]
struct Piece {
    set: CharSet,
    min: usize,
    max: usize,
}

/// Upper repetition bound for unbounded quantifiers (`*`, `+`).
const UNBOUNDED_MAX: usize = 32;

fn printable_set() -> CharSet {
    // `\PC` means "not in Unicode category C (control/unassigned)". Sample
    // ASCII printables plus two Latin blocks so multi-byte UTF-8 is exercised.
    CharSet {
        ranges: vec![(' ', '~'), ('¡', 'ÿ'), ('Ā', 'ſ')],
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> CharSet {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated [class] in regex strategy {pattern:?}"));
        match c {
            ']' => break,
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling '-' in regex strategy {pattern:?}"));
                    if hi == ']' {
                        ranges.push((lo, lo));
                        ranges.push(('-', '-'));
                        break;
                    }
                    assert!(lo <= hi, "inverted range in regex strategy {pattern:?}");
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    assert!(
        !ranges.is_empty(),
        "empty [class] in regex strategy {pattern:?}"
    );
    CharSet { ranges }
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => body.push(c),
                    None => panic!("unterminated {{m,n}} in regex strategy {pattern:?}"),
                }
            }
            let parse = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repeat count in regex strategy {pattern:?}"))
            };
            match body.split_once(',') {
                Some((m, n)) => (parse(m), parse(n)),
                None => {
                    let m = parse(&body);
                    (m, m)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_MAX)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_MAX)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex strategy {pattern:?}"));
                match esc {
                    'P' | 'p' => {
                        // Only the category-C shorthands appear in our tests;
                        // consume the category letter and treat the class as
                        // "printable" either way.
                        chars.next();
                        printable_set()
                    }
                    'd' => CharSet {
                        ranges: vec![('0', '9')],
                    },
                    'w' => CharSet {
                        ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                    },
                    lit @ ('\\' | '.' | '[' | ']' | '{' | '}' | '*' | '+' | '?' | '-') => CharSet {
                        ranges: vec![(lit, lit)],
                    },
                    other => panic!("unsupported escape \\{other} in regex strategy {pattern:?}"),
                }
            }
            '.' => printable_set(),
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in strategy {pattern:?}")
            }
            lit => CharSet {
                ranges: vec![(lit, lit)],
            },
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        assert!(
            min <= max,
            "inverted quantifier in regex strategy {pattern:?}"
        );
        pieces.push(Piece { set, min, max });
    }
    pieces
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(piece.set.sample(rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Strategy, TestRng};

    #[test]
    fn class_with_count_range() {
        let mut rng = TestRng::deterministic("class");
        for _ in 0..200 {
            let s = "[a-z0-9]{4,12}".generate(&mut rng);
            assert!(s.len() >= 4 && s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_star() {
        let mut rng = TestRng::deterministic("printable");
        for _ in 0..200 {
            let s = "\\PC*".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::deterministic("lit");
        let s = "ab[0-9]{3}".generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
    }
}
