//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of the API the workspace's property tests use:
//! the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_oneof!`]
//! macros, the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! [`any`], [`Just`], range/tuple/collection/sample strategies, and
//! string strategies from a small regex subset (`[class]{m,n}`, `\PC`,
//! `*`/`+`/`?` quantifiers).
//!
//! Differences from real proptest, chosen for offline simplicity:
//! * no shrinking — a failing case reports its values but not a minimal
//!   counterexample;
//! * cases are generated from a deterministic per-test RNG (seeded from
//!   the test's name), so failures reproduce across runs;
//! * default case count is 64 (tunable via `ProptestConfig::with_cases`,
//!   which the tests that need more already call).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a), so each test gets a stable stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-runner plumbing namespace (API-compatibility shim).
pub mod test_runner {
    pub use crate::{ProptestConfig, TestRng};
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values (regenerates until `f` passes; gives up
    /// — keeping the last candidate — after 1000 attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Boxes a strategy for heterogeneous storage (e.g. [`prop_oneof!`] arms).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut candidate = self.inner.generate(rng);
        for _ in 0..1000 {
            if (self.f)(&candidate) {
                break;
            }
            candidate = self.inner.generate(rng);
        }
        candidate
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds from non-empty arms.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_ranges!(f32, f64);

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}
impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index {
            raw: rng.next_u64(),
        }
    }
}

/// Strategy produced by [`any`].
pub struct ArbitraryStrategy<A> {
    _marker: std::marker::PhantomData<fn() -> A>,
}

impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A` (`any::<u32>()`, …).
#[must_use]
pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
    ArbitraryStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `BTreeSet` of values from `element`; target size in `size`
    /// (duplicates shrink the result like in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A `BTreeMap` with keys/values from the given strategies.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// A deferred index into a not-yet-known-length collection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        pub(crate) raw: u64,
    }

    impl Index {
        /// Resolves against a collection of length `len`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    /// Uniform choice from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// A strategy choosing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

mod regex_strategy;

/// The `prop::` namespace used via the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{:?}` == `{:?}`", l, r));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{:?}` == `{:?}`: {}",
                        l, r, format!($($fmt)+)));
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        l, r
                    ));
                }
            }
        }
    };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, message,
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0.0f64..1.0, z in 1u8..=3) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=3).contains(&z));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u32..5, 2..6),
            pick in prop_oneof![Just(1u8), Just(2u8)],
            s in "[a-z]{1,6}",
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(_x in any::<u64>()) {
            // Runs 7 times; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
