//! Offline vendored stand-in for `criterion`.
//!
//! Keeps the workspace's benches compiling and producing useful (if
//! unsophisticated) numbers: each `bench_function` runs the closure
//! `sample_size` times and prints the mean wall time. No statistics, plots,
//! or baselines. When invoked with `--test` (as `cargo test` does for bench
//! targets), each benchmark runs exactly once, unmeasured.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation. Accepted (and echoed) but not used for rate maths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How much setup output to batch per timing run. All variants behave
/// identically here: setup runs once per iteration, outside the timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The benchmark context.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (only `--test` is recognised).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self.default_sample_size;
        run_one(name, self.test_mode, samples, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Records the group's throughput annotation (accepted, not computed on).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a single function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.criterion.test_mode, samples, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, samples: usize, mut f: F) {
    let mut b = Bencher {
        iters: if test_mode { 1 } else { samples.max(1) },
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("bench {name}: ok (test mode)");
    } else {
        let mean = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "bench {name}: {:.3} ms/iter ({} iters)",
            mean * 1e3,
            b.iters
        );
    }
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
