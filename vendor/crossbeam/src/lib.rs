//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only [`scope`] is used in the workspace; it is reimplemented over
//! `std::thread::scope` (stable since Rust 1.63). API matches crossbeam
//! 0.8: the closure receives a scope handle whose `spawn` passes the scope
//! again to the spawned closure, and `join` returns `std::thread::Result`.
//!
//! Behavioural difference: a panicking worker propagates the panic when
//! joined instead of surfacing it through the outer `Result` — the
//! workspace immediately `expect`s both layers, so the observable effect
//! (abort with the worker's panic message) is the same.

#![forbid(unsafe_code)]

use std::thread;

/// A scope handle allowing borrowing spawns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// A handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope handle (so
    /// workers may spawn more workers), like crossbeam's API.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope for spawning threads that may borrow from the caller.
/// All spawned threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u32, 2, 3, 4];
        let total: u32 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let n = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
