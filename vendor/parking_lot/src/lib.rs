//! Offline vendored stand-in for `parking_lot`.
//!
//! Non-poisoning [`Mutex`] and [`RwLock`] with parking_lot's API shape
//! (guards from `lock()`/`read()`/`write()` without `Result`), implemented
//! over the std primitives. A poisoned std lock (some thread panicked while
//! holding it) is recovered transparently, matching parking_lot's
//! no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock (non-poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
