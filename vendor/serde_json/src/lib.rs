//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the vendored serde [`Content`](serde::Content) tree to JSON text.
//! Supports the workspace's call sites: [`to_string`] and
//! [`to_string_pretty`] (2-space indent, matching real serde_json's pretty
//! printer). Non-string map keys are stringified like real serde_json does
//! for integer keys; non-scalar keys are an error. Non-finite floats render
//! as `null` (real serde_json behaviour).

#![forbid(unsafe_code)]

use serde::{Content, Serialize};
use std::fmt;

/// Serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.collect(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.collect(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Serializes `value` as JSON into an `io::Write`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a map key: strings verbatim, scalars stringified (like real
/// serde_json's integer-key support).
fn write_key(key: &Content, out: &mut String) -> Result<()> {
    match key {
        Content::Str(s) => write_escaped(s, out),
        Content::U64(n) => write_escaped(&n.to_string(), out),
        Content::I64(n) => write_escaped(&n.to_string(), out),
        Content::Bool(b) => write_escaped(&b.to_string(), out),
        Content::F64(x) => write_escaped(&format!("{x:?}"), out),
        Content::Null | Content::Seq(_) | Content::Map(_) => {
            return Err(Error("map key must be a scalar".to_owned()));
        }
    }
    Ok(())
}

fn indent(out: &mut String, indent_width: Option<usize>, level: usize) {
    if let Some(w) = indent_width {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_content(
    value: &Content,
    out: &mut String,
    pretty: Option<usize>,
    level: usize,
) -> Result<()> {
    match value {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                // `{:?}` keeps a decimal point on integral floats (`1.0`),
                // matching serde_json's ryu output closely enough.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                indent(out, pretty, level + 1);
                write_content(item, out, pretty, level + 1)?;
            }
            indent(out, pretty, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                indent(out, pretty, level + 1);
                write_key(k, out)?;
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_content(v, out, pretty, level + 1)?;
            }
            indent(out, pretty, level);
            out.push('}');
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_and_composites() {
        assert_eq!(to_string(&1u32).unwrap(), "1");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string(&(1u8, "x")).unwrap(), "[1,\"x\"]");
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
        let mut m = BTreeMap::new();
        m.insert("k".to_owned(), 7u64);
        assert_eq!(to_string(&m).unwrap(), "{\"k\":7}");
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), vec![1u8]);
        assert_eq!(
            to_string_pretty(&m).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }
}
