//! # breval — how biased is our validation (data) for AS relationships?
//!
//! Umbrella crate for the `breval` workspace, a full Rust reproduction of
//! Prehn & Feldmann's IMC 2021 study over a simulated Internet. Re-exports
//! every substrate so examples and downstream users need a single dependency:
//!
//! * [`asgraph`] — AS-level graph model (ASNs, links, relationships, cones,
//!   cliques, AS paths).
//! * [`asregistry`] — IANA/RIR registry formats and the ASN→region mapping.
//! * [`bgpwire`] — BGP UPDATE and MRT `TABLE_DUMP_V2` wire formats.
//! * [`topogen`] — seeded Internet-like topology generation with ground
//!   truth.
//! * [`bgpsim`] — Gao–Rexford route propagation, communities, looking glass.
//! * [`asinfer`] — ASRank / ProbLink / TopoScope / Gao classifiers.
//! * [`valdata`] — community/RPSL/direct-report validation compilation.
//! * [`analysis`] (= `breval-core`) — the paper's bias & correctness
//!   analyses, scenario pipeline and report rendering.
//! * [`obs`] (= `breval-obs`) — span timers, metrics, and run manifests
//!   (enabled via the `BREVAL_OBS` environment variable).
//! * [`par`] (= `breval-par`) — work-stealing parallel execution layer
//!   (thread cap via `BREVAL_THREADS` / `par::set_max_threads`).
//!
//! ## Quickstart
//!
//! ```
//! use breval::analysis::{Scenario, ScenarioConfig};
//!
//! let scenario = Scenario::run(ScenarioConfig::small(7));
//! let fig2 = scenario.fig2();
//! assert!(fig2.iter().any(|row| row.class == "S-TR"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asgraph;
pub use asinfer;
pub use asregistry;
pub use bgpsim;
pub use bgpwire;
pub use breval_core as analysis;
pub use breval_obs as obs;
pub use breval_par as par;
pub use topogen;
pub use valdata;
